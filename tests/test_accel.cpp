// Cross-structure equivalence suite for the AccelStructure seam
// (geom/accel.hpp): every registered structure — octree, binned-SAH BVH,
// nested uniform grid — must answer closest-hit queries bitwise-identically
// to the brute linear scan on every bundled scene, and its parallel build
// must produce bitwise-identical packed arrays at any worker count. The
// octree additionally keeps its own long-standing suite (test_octree.cpp);
// this file pins the seam contract uniformly across kinds.
#include "geom/accel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/rng.hpp"
#include "geom/bvh.hpp"
#include "geom/grid.hpp"
#include "geom/leaf_kernel.hpp"
#include "geom/scenes.hpp"

namespace photon {
namespace {

std::vector<Patch> random_patch_soup(int n, std::uint64_t seed) {
  std::vector<Patch> patches;
  Lcg48 rng(seed);
  for (int i = 0; i < n; ++i) {
    const Vec3 origin{rng.uniform() * 10, rng.uniform() * 10, rng.uniform() * 10};
    const Vec3 e1{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    const Vec3 e2{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    if (cross(e1, e2).length() < 1e-6) continue;  // skip degenerate
    patches.emplace_back(origin, e1, e2, 0);
  }
  return patches;
}

// (structure kind, bundled scene) matrix.
class AccelEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<AccelKind, const char*>> {};

std::string accel_param_name(
    const ::testing::TestParamInfo<std::tuple<AccelKind, const char*>>& info) {
  return std::string(accel_kind_name(std::get<0>(info.param))) + "_" +
         std::get<1>(info.param);
}

// The seam's core promise: patch, dist, s, t and front agree with the brute
// scan bit for bit — every structure runs the identical kernel arithmetic
// over its own leaf decomposition, so any divergence means the decomposition
// dropped a reference or the traversal's front-to-back pruning is unsound.
TEST_P(AccelEquivalenceTest, MatchesBruteForceBitwiseOnScenes) {
  Scene scene = scenes::by_name(std::get<1>(GetParam()));
  scene.set_accel(std::get<0>(GetParam()));
  scene.build();
  ASSERT_TRUE(scene.built());

  Lcg48 rng(999);
  int hits = 0;
  for (int i = 0; i < 1500; ++i) {
    const Aabb b = scene.bounds();
    const Vec3 e = b.extent();
    const Vec3 origin = b.lo + Vec3{rng.uniform() * e.x, rng.uniform() * e.y, rng.uniform() * e.z};
    Vec3 dir{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    if (dir.length_squared() < 1e-9) continue;
    const Ray ray(origin, dir.normalized());

    const auto fast = scene.intersect(ray);
    const auto slow = scene.intersect_brute(ray);
    ASSERT_EQ(fast.has_value(), slow.has_value()) << "ray " << i;
    if (fast) {
      ++hits;
      ASSERT_EQ(fast->patch, slow->patch) << "ray " << i;
      EXPECT_EQ(fast->dist, slow->dist) << "ray " << i;
      EXPECT_EQ(fast->s, slow->s) << "ray " << i;
      EXPECT_EQ(fast->t, slow->t) << "ray " << i;
      EXPECT_EQ(fast->front, slow->front) << "ray " << i;
    }
  }
  EXPECT_GT(hits, 300) << "test exercised too few hits to be meaningful";
}

// Outside origins, grazing directions and capped tmax — the pruning paths
// (root slab miss, DDA segment clipping, per-child slab clipped by the
// running best, early-out at a confirmed nearest hit) all have to agree.
TEST_P(AccelEquivalenceTest, MatchesBruteForceOnFuzzedRays) {
  Scene scene = scenes::by_name(std::get<1>(GetParam()));
  scene.set_accel(std::get<0>(GetParam()));
  scene.build();

  const Aabb b = scene.bounds();
  const Vec3 c = b.center();
  const Vec3 e = b.extent();
  const double diag = e.length();
  Lcg48 rng(77);
  for (int i = 0; i < 1500; ++i) {
    const double scale = 0.2 + 2.0 * rng.uniform();
    const Vec3 origin = c + Vec3{(rng.uniform() - 0.5) * e.x * scale,
                                 (rng.uniform() - 0.5) * e.y * scale,
                                 (rng.uniform() - 0.5) * e.z * scale};
    Vec3 dir{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    if (i % 3 == 0) dir.z *= 1e-4;  // grazing, nearly axis-parallel
    if (dir.length_squared() < 1e-9) continue;
    const Ray ray(origin, dir.normalized());
    const double tmax = i % 2 == 0 ? kNoHit : diag * rng.uniform();

    const auto fast = scene.intersect(ray, tmax);
    const auto slow = scene.intersect_brute(ray, tmax);
    ASSERT_EQ(fast.has_value(), slow.has_value()) << "ray " << i;
    if (fast) {
      ASSERT_EQ(fast->patch, slow->patch) << "ray " << i;
      EXPECT_EQ(fast->dist, slow->dist) << "ray " << i;
      EXPECT_EQ(fast->s, slow->s) << "ray " << i;
      EXPECT_EQ(fast->t, slow->t) << "ray " << i;
      EXPECT_EQ(fast->front, slow->front) << "ray " << i;
    }
  }
}

// The counted traversal must agree with the fast path and actually prune:
// the seam's work meters (patch tests, cells/nodes visited) feed the bench
// shootout, so they must be deterministic and meaningful for every kind.
TEST_P(AccelEquivalenceTest, CountedTraversalAgreesAndPrunes) {
  Scene scene = scenes::by_name(std::get<1>(GetParam()));
  scene.set_accel(std::get<0>(GetParam()));
  scene.build();

  const Aabb b = scene.bounds();
  const Vec3 e = b.extent();
  Lcg48 rng(31);
  TraversalStats stats;
  const int rays = 400;
  for (int i = 0; i < rays; ++i) {
    const Vec3 origin = b.lo + Vec3{rng.uniform() * e.x, rng.uniform() * e.y, rng.uniform() * e.z};
    Vec3 dir{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    if (dir.length_squared() < 1e-9) continue;
    const Ray ray(origin, dir.normalized());
    SceneHit counted;
    const bool hit = scene.accel().intersect_counted(ray, kNoHit, counted, stats);
    const auto fast = scene.intersect(ray);
    ASSERT_EQ(hit, fast.has_value()) << "ray " << i;
    if (hit) {
      EXPECT_EQ(counted.patch, fast->patch);
      EXPECT_EQ(counted.dist, fast->dist);
    }
  }
  const double tests_per_ray = static_cast<double>(stats.patch_tests) / rays;
  EXPECT_LT(tests_per_ray, static_cast<double>(scene.patch_count()) / 2.0)
      << "structure is testing most of the scene per ray";
  EXPECT_GT(stats.nodes_visited, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AccelEquivalenceTest,
    ::testing::Combine(::testing::Values(AccelKind::kOctree, AccelKind::kBvh, AccelKind::kGrid),
                       ::testing::Values("cornell", "harpsichord", "lab")),
    accel_param_name);

// Per-kind behaviors that don't need a scene.
class AccelKindTest : public ::testing::TestWithParam<AccelKind> {};

std::string kind_param_name(const ::testing::TestParamInfo<AccelKind>& info) {
  return accel_kind_name(info.param);
}

TEST_P(AccelKindTest, EmptyInput) {
  const auto tree = make_accel(GetParam());
  tree->build(std::vector<Patch>{});
  EXPECT_FALSE(tree->built());
  EXPECT_FALSE(tree->intersect(Ray({0, 0, 0}, {0, 0, 1})).has_value());
}

TEST_P(AccelKindTest, SinglePatch) {
  std::vector<Patch> patches{Patch({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 0)};
  const auto tree = make_accel(GetParam());
  tree->build(patches);
  ASSERT_TRUE(tree->built());
  EXPECT_EQ(tree->kind(), GetParam());
  const auto hit = tree->intersect(Ray({0.5, 0.5, 1}, {0, 0, -1}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->patch, 0);
  EXPECT_NEAR(hit->dist, 1.0, 1e-12);
}

TEST_P(AccelKindTest, TmaxCutsOffDistantHits) {
  std::vector<Patch> patches{Patch({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 0)};
  const auto tree = make_accel(GetParam());
  tree->build(patches);
  EXPECT_FALSE(tree->intersect(Ray({0.5, 0.5, 5}, {0, 0, -1}), 1.0).has_value());
  EXPECT_TRUE(tree->intersect(Ray({0.5, 0.5, 5}, {0, 0, -1}), 6.0).has_value());
}

TEST_P(AccelKindTest, MatchesBruteForceOnRandomSoup) {
  const auto patches = random_patch_soup(300, 2024);
  const auto tree = make_accel(GetParam());
  tree->build(patches);

  // Scalar reference loop over the raw patch array.
  const auto brute = [&](const Ray& ray) {
    SceneHit best;
    PatchHit hit;
    for (std::size_t i = 0; i < patches.size(); ++i) {
      if (patches[i].intersect(ray, best.dist, hit)) {
        best.patch = static_cast<int>(i);
        best.dist = hit.dist;
        best.s = hit.s;
        best.t = hit.t;
        best.front = hit.front;
      }
    }
    return best;
  };

  Lcg48 rng(555);
  for (int i = 0; i < 2000; ++i) {
    const Vec3 origin{rng.uniform() * 12 - 1, rng.uniform() * 12 - 1, rng.uniform() * 12 - 1};
    Vec3 dir{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    if (dir.length_squared() < 1e-6) continue;
    const Ray ray(origin, dir.normalized());
    SceneHit fast;
    tree->intersect(ray, kNoHit, fast);
    const SceneHit slow = brute(ray);
    ASSERT_EQ(fast.patch, slow.patch) << "ray " << i;
    EXPECT_EQ(fast.dist, slow.dist) << "ray " << i;
  }
}

// The parallel-build determinism pin for every kind: the packed arrays must
// be bitwise-identical at any worker count (explicit workers always takes
// the task-decomposed path, so this covers the pool stitching too).
TEST_P(AccelKindTest, ParallelBuildIsBitwiseIdenticalToSerial) {
  for (const int n : {64, 700, 2500}) {
    const auto patches = random_patch_soup(n, 1000 + static_cast<std::uint64_t>(n));
    const auto serial = make_accel(GetParam());
    AccelBuildParams params;
    params.workers = 1;
    serial->build(patches, params);
    for (const int workers : {2, 4, 8}) {
      const auto parallel = make_accel(GetParam());
      params.workers = workers;
      parallel->build(patches, params);
      EXPECT_TRUE(parallel->identical_to(*serial))
          << accel_kind_name(GetParam()) << " n=" << n << " workers=" << workers;
    }
  }
}

TEST_P(AccelKindTest, IdenticalToRejectsOtherKinds) {
  const auto patches = random_patch_soup(100, 42);
  const auto mine = make_accel(GetParam());
  mine->build(patches);
  for (const AccelKind other_kind : accel_kinds()) {
    if (other_kind == GetParam()) continue;
    const auto other = make_accel(other_kind);
    other->build(patches);
    EXPECT_FALSE(mine->identical_to(*other));
  }
}

TEST_P(AccelKindTest, LanePaddingInvariants) {
  const Scene scene = scenes::computer_lab();
  const auto tree = make_accel(GetParam());
  tree->build(scene.patches());
  const auto W = static_cast<std::size_t>(kernel_lane_width());
  EXPECT_EQ(tree->lane_count() % W, 0u);
  EXPECT_GE(tree->lane_count(), tree->item_ref_count());
  EXPECT_LE(tree->lane_count(), tree->item_ref_count() + tree->node_count() * (W - 1));
  EXPECT_GT(tree->memory_bytes(), 0u);
  EXPECT_GT(tree->node_count(), 0u);
  EXPECT_GE(tree->depth(), 1);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AccelKindTest,
                         ::testing::Values(AccelKind::kOctree, AccelKind::kBvh, AccelKind::kGrid),
                         kind_param_name);

TEST(AccelFactory, KindNamesRoundTrip) {
  for (const AccelKind kind : accel_kinds()) {
    AccelKind parsed = AccelKind::kOctree;
    ASSERT_TRUE(accel_kind_from_string(accel_kind_name(kind), parsed));
    EXPECT_EQ(parsed, kind);
    EXPECT_EQ(make_accel(kind)->kind(), kind);
  }
  AccelKind parsed = AccelKind::kOctree;
  EXPECT_FALSE(accel_kind_from_string("kdtree", parsed));
  EXPECT_FALSE(accel_kind_from_string("", parsed));
}

TEST(AccelFactory, CanonicalOrder) {
  const auto kinds = accel_kinds();
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], AccelKind::kOctree);
  EXPECT_EQ(kinds[1], AccelKind::kBvh);
  EXPECT_EQ(kinds[2], AccelKind::kGrid);
}

TEST(Bvh, ObjectPartitionReferencesEachPatchOnce) {
  const Scene scene = scenes::computer_lab();
  Bvh bvh;
  bvh.build(scene.patches());
  EXPECT_EQ(bvh.item_ref_count(), scene.patch_count());
}

TEST(Bvh, LeafCapacityShrinksWithParam) {
  const auto patches = random_patch_soup(500, 7);
  Bvh coarse, fine;
  AccelBuildParams params;
  params.bvh_leaf_items = 16;
  coarse.build(patches, params);
  params.bvh_leaf_items = 2;
  fine.build(patches, params);
  EXPECT_GT(fine.node_count(), coarse.node_count());
}

TEST(HashGrid, RefinesHotCellsWhenCoarseCellsOverflow) {
  const Scene scene = scenes::computer_lab();
  HashGrid grid;
  AccelBuildParams params;
  params.grid_density = 0.5;          // coarse grid concentrates refs per cell
  params.grid_refine_threshold = 8;   // low bar: clustered furniture overflows
  grid.build(scene.patches(), params);
  EXPECT_GT(grid.refined_cell_count(), 0u);
  EXPECT_EQ(grid.depth(), 2);
  const auto res = grid.resolution();
  EXPECT_GE(res[0], 1);
  EXPECT_GE(res[1], 1);
  EXPECT_GE(res[2], 1);

  // The refined grid still answers bitwise-identically to the brute scan.
  Lcg48 rng(4242);
  const Aabb b = scene.bounds();
  const Vec3 e = b.extent();
  for (int i = 0; i < 500; ++i) {
    const Vec3 origin = b.lo + Vec3{rng.uniform() * e.x, rng.uniform() * e.y, rng.uniform() * e.z};
    Vec3 dir{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    if (dir.length_squared() < 1e-9) continue;
    const Ray ray(origin, dir.normalized());
    SceneHit fast;
    grid.intersect(ray, kNoHit, fast);
    const auto slow = scene.intersect_brute(ray);
    ASSERT_EQ(fast.patch >= 0, slow.has_value()) << "ray " << i;
    if (slow) {
      ASSERT_EQ(fast.patch, slow->patch) << "ray " << i;
      EXPECT_EQ(fast.dist, slow->dist) << "ray " << i;
    }
  }
}

TEST(HashGrid, RefinementThresholdDisablesNesting) {
  const auto patches = random_patch_soup(200, 11);
  HashGrid grid;
  AccelBuildParams params;
  params.grid_refine_threshold = 1 << 20;  // nothing is hot
  grid.build(patches, params);
  EXPECT_EQ(grid.refined_cell_count(), 0u);
  EXPECT_EQ(grid.depth(), 1);
}

TEST(Scene, SwitchingAccelKindRebuildsAndAnswersIdentically) {
  Scene scene = scenes::cornell_box();
  ASSERT_EQ(scene.accel_kind(), AccelKind::kOctree);
  const Ray ray({0.5, 0.5, 2.5}, Vec3{0.1, -0.2, -1.0}.normalized());
  const auto reference = scene.intersect(ray);
  ASSERT_TRUE(reference.has_value());

  for (const AccelKind kind : {AccelKind::kBvh, AccelKind::kGrid, AccelKind::kOctree}) {
    scene.set_accel(kind);
    EXPECT_FALSE(scene.built());  // switching discards the old index
    scene.build();
    ASSERT_TRUE(scene.built());
    EXPECT_EQ(scene.accel_kind(), kind);
    const auto hit = scene.intersect(ray);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->patch, reference->patch);
    EXPECT_EQ(hit->dist, reference->dist);
  }
}

}  // namespace
}  // namespace photon
