// Hybrid-backend contracts beyond what the conformance suite covers for
// every backend: the shape-invariance guarantee itself (the tentpole — any
// groups × threads shape is bitwise-equal to the serial photon-stream
// reference), resume as a bitwise continuation, and the report surface.
#include "par/hybrid.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "geom/scenes.hpp"
#include "sim/simulator.hpp"

namespace photon {
namespace {

RunConfig hybrid_config(int groups, int workers) {
  RunConfig cfg;
  cfg.photons = 2000;
  cfg.batch = 500;  // global ids per window
  cfg.groups = groups;
  cfg.workers = workers;
  return cfg;
}

RunResult reference_run(const Scene& s, const RunConfig& cfg) {
  RunConfig ref = cfg;
  ref.photon_streams = true;
  ref.rank = 0;
  ref.nranks = 1;
  return run_serial(s, ref);
}

class HybridShapeTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HybridShapeTest, AnyShapeIsBitwiseTheSerialReference) {
  const auto [G, T] = GetParam();
  const Scene s = scenes::cornell_box();
  const RunConfig cfg = hybrid_config(G, T);
  const RunResult hybrid = run_hybrid(s, cfg);
  const RunResult reference = reference_run(s, cfg);

  EXPECT_TRUE(hybrid.forest == reference.forest) << "shape " << G << "x" << T;
  EXPECT_EQ(hybrid.counters.emitted, reference.counters.emitted);
  EXPECT_EQ(hybrid.counters.bounces, reference.counters.bounces);
  EXPECT_EQ(hybrid.counters.absorbed, reference.counters.absorbed);
  EXPECT_EQ(hybrid.counters.escaped, reference.counters.escaped);
}

TEST_P(HybridShapeTest, WindowScheduleIsShapeInvariant) {
  // The forest must not depend on the window size relative to the shape:
  // different batch values give the same answer only when the apply order is
  // truly canonical (here: global photon-id order in every window).
  const auto [G, T] = GetParam();
  const Scene s = scenes::cornell_box();
  RunConfig cfg = hybrid_config(G, T);
  const RunResult a = run_hybrid(s, cfg);
  cfg.batch = 137;  // ragged windows: slices of uneven size across groups
  const RunResult b = run_hybrid(s, cfg);
  EXPECT_TRUE(a.forest == b.forest) << "shape " << G << "x" << T;
}

INSTANTIATE_TEST_SUITE_P(Shapes, HybridShapeTest,
                         ::testing::Values(std::make_tuple(1, 1), std::make_tuple(1, 4),
                                           std::make_tuple(2, 2), std::make_tuple(4, 1),
                                           std::make_tuple(4, 2)));

TEST(HybridSim, ResumeIsABitwiseContinuation) {
  // Leg 1 ends on a window boundary (photons % batch == 0), so leg 2's
  // windows line up with the uninterrupted run's and the continuation is
  // bitwise — at a different shape than leg 1, even: the id sequence, not
  // the shape, carries the state.
  const Scene s = scenes::cornell_box();
  RunConfig leg1_cfg = hybrid_config(2, 2);
  leg1_cfg.photons = 1500;  // 3 windows of 500
  const RunResult leg1 = run_hybrid(s, leg1_cfg);

  RunConfig leg2_cfg = hybrid_config(4, 2);
  leg2_cfg.photons = 1000;
  const RunResult resumed = run_hybrid(s, leg2_cfg, &leg1);

  RunConfig straight_cfg = hybrid_config(2, 2);
  straight_cfg.photons = 2500;
  const RunResult straight = run_hybrid(s, straight_cfg);

  EXPECT_TRUE(resumed.forest == straight.forest);
  EXPECT_EQ(resumed.counters.emitted, straight.counters.emitted);
  EXPECT_EQ(resumed.counters.bounces, straight.counters.bounces);
  EXPECT_EQ(resumed.forest.emitted_total(), 2500u);
}

TEST(HybridSim, TracesTheExactBudgetAndConserves) {
  const Scene s = scenes::cornell_box();
  const RunConfig cfg = hybrid_config(2, 3);
  const RunResult r = run_hybrid(s, cfg);

  std::uint64_t traced = 0, processed = 0;
  for (const RankReport& rep : r.ranks) {
    traced += rep.traced;
    processed += rep.processed;
  }
  // Unlike dist-particle's per-rank rounding, the id-space split is exact.
  EXPECT_EQ(traced, cfg.photons);
  EXPECT_EQ(r.counters.emitted, cfg.photons);
  EXPECT_EQ(r.forest.emitted_total(), cfg.photons);
  // Every record (emission or reflection) is tallied exactly once by the
  // owning group.
  EXPECT_EQ(processed, r.counters.emitted + r.counters.bounces);
  EXPECT_EQ(r.forest.total_tally_all(), processed);
}

TEST(HybridSim, MessagesFlowBetweenGroups) {
  const Scene s = scenes::cornell_box();
  const RunConfig cfg = hybrid_config(4, 2);
  const RunResult r = run_hybrid(s, cfg);
  std::uint64_t bytes = 0;
  for (const RankReport& rep : r.ranks) bytes += rep.sent_bytes;
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(r.ranks.size(), 4u);
  EXPECT_GT(r.ranks[0].rounds, 0u);
  ASSERT_EQ(r.balance.owner.size(), s.patch_count());
}

// (run_photon_streams — the reference dist-spatial has always been pinned to
// — now *delegates* to serial's photon_streams mode, so the two references
// are one implementation by construction.)

TEST(HybridSim, SerialPhotonStreamResumeIsBitwise) {
  const Scene s = scenes::cornell_box();
  RunConfig half;
  half.photons = 1000;
  half.photon_streams = true;
  const RunResult first = run_serial(s, half);
  const RunResult resumed = run_serial(s, half, &first);

  RunConfig full = half;
  full.photons = 2000;
  const RunResult straight = run_serial(s, full);
  EXPECT_TRUE(resumed.forest == straight.forest);
}

}  // namespace
}  // namespace photon
