#include "view/viewer.hpp"

#include <gtest/gtest.h>

#include "geom/scenes.hpp"
#include "sim/simulator.hpp"

namespace photon {
namespace {

TEST(Camera, CenterRayPointsForward) {
  const Camera cam({0, 0, 0}, {0, 0, -1}, {0, 1, 0}, 60.0, 100, 100);
  const Ray r = cam.ray_through(49.5, 49.5);
  EXPECT_NEAR(r.dir.z, -1.0, 1e-9);
  EXPECT_NEAR(r.dir.x, 0.0, 1e-9);
  EXPECT_NEAR(r.dir.y, 0.0, 1e-9);
}

TEST(Camera, RaysOriginateAtEye) {
  const Camera cam({1, 2, 3}, {0, 0, 0}, {0, 1, 0}, 45.0, 64, 48);
  EXPECT_EQ(cam.ray_through(0, 0).origin, Vec3(1, 2, 3));
  EXPECT_EQ(cam.ray_through(63, 47).origin, Vec3(1, 2, 3));
}

TEST(Camera, FovBoundsCornerRays) {
  const Camera cam({0, 0, 0}, {0, 0, -1}, {0, 1, 0}, 90.0, 100, 100);
  // Top edge of a 90-degree FOV: 45 degrees off axis.
  const Ray top = cam.ray_through(49.5, 0.0);
  const double angle = std::acos(-top.dir.z);
  EXPECT_LT(angle, 3.14159 / 4.0 + 0.02);
  EXPECT_GT(angle, 3.14159 / 4.0 - 0.05);
}

TEST(Camera, PixelsTileTheImagePlane) {
  const Camera cam({0, 0, 0}, {0, 0, -1}, {0, 1, 0}, 60.0, 8, 8);
  // x increases rightward, y increases downward in image space.
  EXPECT_LT(cam.ray_through(0, 4).dir.x, cam.ray_through(7, 4).dir.x);
  EXPECT_GT(cam.ray_through(4, 0).dir.y, cam.ray_through(4, 7).dir.y);
}

TEST(Viewer, MissGivesBackground) {
  Scene s;
  s.add_material(Material::lambertian({0.5, 0.5, 0.5}));
  s.add_patch(Patch({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 0));
  s.build();
  const BinForest forest(s.patch_count());
  ViewOptions opts;
  opts.background = {0.25, 0.5, 0.75};
  const Rgb c = radiance_along(s, forest, Ray({0, 0, 5}, {0, 0, 1}), opts);
  EXPECT_EQ(c, Rgb(0.25, 0.5, 0.75));
}

TEST(Viewer, RenderedCornellIsNotBlack) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 60000;
  cfg.batch = 20000;
  const RunResult r = run_serial(s, cfg);

  const Camera cam({2.75, 2.75, 5.2}, {2.75, 2.75, 0.0}, {0, 1, 0}, 55.0, 64, 64);
  const Image img = render(s, r.forest, cam);
  EXPECT_GT(img.mean_luminance(), 0.0);
  EXPECT_GT(img.max_value(), 0.1);
}

TEST(Viewer, FurnaceRendersUniformly) {
  const Scene s = scenes::furnace_box(0.5);
  RunConfig cfg;
  cfg.photons = 120000;
  cfg.batch = 40000;
  const RunResult r = run_serial(s, cfg);

  const Camera cam({1.0, 1.0, 1.0}, {1.9, 1.2, 1.1}, {0, 1, 0}, 70.0, 32, 32);
  const Image img = render(s, r.forest, cam);
  // Every pixel sees a furnace wall at the same radiance: the relative spread
  // should be modest (Monte Carlo noise only).
  RunningStats stats;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) stats.add(img.at(x, y).r);
  }
  EXPECT_GT(stats.mean(), 0.0);
  EXPECT_LT(stats.stddev() / stats.mean(), 0.35);
}

TEST(Viewer, SameAnswerFileSupportsManyViewpoints) {
  // Fig 4.10: once simulated, any viewpoint renders from the same answer
  // file with no recomputation.
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 40000;
  const RunResult r = run_serial(s, cfg);

  const Camera front({2.75, 2.75, 5.2}, {2.75, 2.75, 0}, {0, 1, 0}, 55.0, 32, 32);
  const Camera corner({0.8, 4.5, 4.8}, {3.0, 1.5, 1.5}, {0, 1, 0}, 55.0, 32, 32);
  const Image a = render(s, r.forest, front);
  const Image b = render(s, r.forest, corner);
  EXPECT_GT(a.mean_luminance(), 0.0);
  EXPECT_GT(b.mean_luminance(), 0.0);
  // Deterministic given the same forest.
  const Image a2 = render(s, r.forest, front);
  EXPECT_DOUBLE_EQ(a.mean_luminance(), a2.mean_luminance());
}

TEST(Viewer, EmissiveSurfaceVisiblyBright) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 50000;
  const RunResult r = run_serial(s, cfg);

  // Looking straight up at the ceiling light from below.
  const Camera up({2.75, 1.0, 2.75}, {2.75, 5.4, 2.75}, {0, 0, 1}, 30.0, 16, 16);
  const Image img = render(s, r.forest, up);
  // Looking at the (non-emissive) back wall.
  const Camera wall({2.75, 2.75, 4.5}, {2.75, 2.75, 0.0}, {0, 1, 0}, 30.0, 16, 16);
  const Image img2 = render(s, r.forest, wall);
  EXPECT_GT(img.mean_luminance(), 3.0 * img2.mean_luminance());
}

TEST(Viewer, BackgroundBehindOpenScene) {
  const Scene s = scenes::floor_and_light();
  const BinForest forest(s.patch_count());
  // Ray that misses the floor entirely.
  const Rgb c = radiance_along(s, forest, Ray({2, 1, 2}, {0, 1, 0}));
  EXPECT_TRUE(c.is_black());
}

TEST(Viewer, SupersamplingIsDeterministic) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 20000;
  const RunResult r = run_serial(s, cfg);
  const Camera cam({2.75, 2.75, 5.2}, {2.75, 2.75, 0}, {0, 1, 0}, 55.0, 24, 24);

  ViewOptions opts;
  opts.samples_per_pixel = 4;
  const Image a = render(s, r.forest, cam, opts);
  const Image b = render(s, r.forest, cam, opts);
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      EXPECT_EQ(a.at(x, y), b.at(x, y));
    }
  }
}

TEST(Viewer, ThreadedRenderMatchesSerial) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 20000;
  const RunResult r = run_serial(s, cfg);
  const Camera cam({2.75, 2.75, 5.2}, {2.75, 2.75, 0}, {0, 1, 0}, 55.0, 32, 24);

  ViewOptions serial_opts;
  ViewOptions threaded_opts;
  threaded_opts.threads = 4;
  const Image a = render(s, r.forest, cam, serial_opts);
  const Image b = render(s, r.forest, cam, threaded_opts);
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      EXPECT_EQ(a.at(x, y), b.at(x, y)) << x << "," << y;
    }
  }
}

TEST(Viewer, SupersamplingIsUnbiased) {
  // Jittered supersampling must change per-pixel values (it averages across
  // histogram patch boundaries) without shifting the overall exposure.
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 40000;
  const RunResult r = run_serial(s, cfg);
  const Camera cam({2.75, 2.75, 5.2}, {2.75, 2.75, 0}, {0, 1, 0}, 55.0, 48, 48);

  ViewOptions sharp;
  ViewOptions smooth;
  smooth.samples_per_pixel = 8;
  const Image a = render(s, r.forest, cam, sharp);
  const Image b = render(s, r.forest, cam, smooth);

  int differing = 0;
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      if (!(a.at(x, y) == b.at(x, y))) ++differing;
    }
  }
  EXPECT_GT(differing, 10) << "supersampling had no effect";
  EXPECT_NEAR(b.mean_luminance(), a.mean_luminance(), 0.05 * a.mean_luminance());
}

}  // namespace
}  // namespace photon
