#include "perf/model.hpp"

#include <gtest/gtest.h>

#include "geom/scenes.hpp"

namespace photon {
namespace {

// A shared fixture profiles each scene once (profiling runs a real
// simulation, so it is worth caching).
class PerfModelTest : public ::testing::Test {
 protected:
  static const WorkloadProfile& cornell() {
    static const WorkloadProfile p = profile_scene(scenes::cornell_box(), 8000, 1);
    return p;
  }
  static const WorkloadProfile& lab() {
    static const WorkloadProfile p = profile_scene(scenes::computer_lab(), 8000, 1);
    return p;
  }

  static double rate_at(const std::vector<SpeedPoint>& trace, double t) {
    double rate = 0.0;
    for (const SpeedPoint& pt : trace) {
      if (pt.time_s <= t) rate = pt.rate;
    }
    return rate;
  }
};

TEST_F(PerfModelTest, ProfileHasSaneValues) {
  const WorkloadProfile& p = cornell();
  EXPECT_GT(p.serial_rate, 0.0);
  EXPECT_GT(p.bounces_per_photon, 1.0);  // emission + at least some bounces
  EXPECT_GT(p.concentration, 0.0);
  EXPECT_LE(p.concentration, 1.0);
  EXPECT_EQ(p.patch_loads.size(), scenes::cornell_box().patch_count());
}

TEST_F(PerfModelTest, LabIsSlowerButFlatterThanCornell) {
  // More geometry -> lower absolute rate; more surfaces -> lower tally
  // concentration (the paper's Fig 5.15 diagonal).
  EXPECT_LT(lab().serial_rate, cornell().serial_rate);
  EXPECT_LT(lab().concentration, cornell().concentration);
}

TEST_F(PerfModelTest, SerialRateScalesWithCpu) {
  const Platform onyx = Platform::power_onyx();
  EXPECT_NEAR(model_serial_rate(cornell(), onyx), cornell().serial_rate * onyx.cpu_scale,
              1e-9);
}

TEST_F(PerfModelTest, SharedMemorySpeedupGrowsWithProcs) {
  const Platform onyx = Platform::power_onyx();
  const double duration = 200.0;
  const double serial = model_serial_rate(lab(), onyx);
  double prev = 0.0;
  for (const int P : {1, 2, 4, 8}) {
    const auto trace = model_shared(lab(), onyx, P, duration);
    ASSERT_FALSE(trace.empty());
    const double rate = trace.back().rate;
    EXPECT_GT(rate, prev) << "P=" << P;
    EXPECT_LE(rate, serial * P * 1.05) << "speedup cannot exceed P";
    prev = rate;
  }
}

TEST_F(PerfModelTest, SmallSceneSaturatesOnSharedMemory) {
  // Chapter 5: "For small geometries, using more than two processors is a
  // waste" — contention on the concentrated bin trees caps the speedup.
  const Platform onyx = Platform::power_onyx();
  const double duration = 200.0;
  const double serial = model_serial_rate(cornell(), onyx);
  const double speedup8 = model_shared(cornell(), onyx, 8, duration).back().rate / serial;
  const double lab_speedup8 = model_shared(lab(), onyx, 8, duration).back().rate /
                              model_serial_rate(lab(), onyx);
  EXPECT_LT(speedup8, lab_speedup8);
}

TEST_F(PerfModelTest, DistributedOneProcMatchesSerialShape) {
  const Platform indy = Platform::indy_cluster();
  const auto trace = model_distributed(cornell(), indy, 1, 100.0);
  ASSERT_FALSE(trace.empty());
  // Approaches the serial rate once the split ramp settles.
  EXPECT_NEAR(trace.back().rate, model_serial_rate(cornell(), indy),
              0.15 * model_serial_rate(cornell(), indy));
}

TEST_F(PerfModelTest, StartupShiftsLooselyCoupledTraces) {
  // Fig 5.15: "the time to the first data point increases as coupling
  // decreases."
  const auto onyx = model_shared(cornell(), Platform::power_onyx(), 4, 100.0);
  const auto indy = model_distributed(cornell(), Platform::indy_cluster(), 4, 100.0);
  ASSERT_FALSE(onyx.empty());
  ASSERT_FALSE(indy.empty());
  EXPECT_GT(indy.front().time_s, onyx.front().time_s);
}

TEST_F(PerfModelTest, IndyClusterScalesOnLargeScene) {
  const Platform indy = Platform::indy_cluster();
  const double duration = 2000.0;
  const double serial = model_serial_rate(lab(), indy);
  const double r2 = model_distributed(lab(), indy, 2, duration).back().rate;
  const double r8 = model_distributed(lab(), indy, 8, duration).back().rate;
  EXPECT_GT(r8, r2);
  EXPECT_GT(r8 / serial, 3.0);  // decent scaling at 8 procs
  EXPECT_LE(r8 / serial, 8.0);
}

TEST_F(PerfModelTest, Sp2DipBetween2And4) {
  // The paper's signature anomaly: buffered asynchronous messaging makes the
  // per-processor efficiency drop when going from 2 to 4 processors.
  const Platform sp2 = Platform::sp2();
  const double duration = 500.0;
  const double r2 = model_distributed(cornell(), sp2, 2, duration).back().rate;
  const double r4 = model_distributed(cornell(), sp2, 4, duration).back().rate;
  // Efficiency per processor must drop sharply (not just sublinear growth).
  EXPECT_LT(r4 / 4.0, 0.8 * (r2 / 2.0));
}

TEST_F(PerfModelTest, Sp2StillScalesBeyond4) {
  // "Beyond 4 processors, the graphs show that Photon seems to scale well."
  const Platform sp2 = Platform::sp2();
  const double duration = 500.0;
  const double r4 = model_distributed(lab(), sp2, 4, duration).back().rate;
  const double r16 = model_distributed(lab(), sp2, 16, duration).back().rate;
  const double r64 = model_distributed(lab(), sp2, 64, duration).back().rate;
  EXPECT_GT(r16, 1.8 * r4);
  EXPECT_GT(r64, 2.0 * r16);
}

TEST_F(PerfModelTest, RatesRampUpOverTime) {
  // Early splitting work makes the first points slower than the plateau, as
  // in every trace of chapter 5.
  const auto trace = model_shared(cornell(), Platform::power_onyx(), 4, 300.0);
  ASSERT_GT(trace.size(), 10u);
  EXPECT_LT(trace.front().rate, trace.back().rate);
}

TEST_F(PerfModelTest, BatchSizesFollowTable53Dynamics) {
  std::vector<std::uint64_t> sizes;
  model_distributed(cornell(), Platform::indy_cluster(), 8, 2000.0, &sizes);
  ASSERT_GE(sizes.size(), 4u);
  EXPECT_EQ(sizes[0], 500u);
  EXPECT_EQ(sizes[1], 750u);  // first update always grows
  // Growth is eventually checked: some size must be below its predecessor.
  bool shrank = false;
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    if (sizes[i] < sizes[i - 1]) shrank = true;
  }
  EXPECT_TRUE(shrank);
}

TEST_F(PerfModelTest, TimeAndPhotonsAreMonotone) {
  for (const Platform& platform :
       {Platform::power_onyx(), Platform::indy_cluster(), Platform::sp2()}) {
    const auto trace = model_distributed(cornell(), platform, 4, 300.0);
    for (std::size_t i = 1; i < trace.size(); ++i) {
      EXPECT_GT(trace[i].time_s, trace[i - 1].time_s) << platform.name;
      EXPECT_GE(trace[i].photons, trace[i - 1].photons) << platform.name;
    }
  }
}

}  // namespace
}  // namespace photon
