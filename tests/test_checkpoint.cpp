#include "sim/checkpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "geom/scenes.hpp"
#include "par/dist.hpp"

namespace photon {
namespace {

TEST(Checkpoint, ResumeIsBitwiseIdenticalToStraightRun) {
  const Scene s = scenes::cornell_box();

  RunConfig full;
  full.photons = 40000;
  const RunResult straight = run_serial(s, full);

  RunConfig half;
  half.photons = 20000;
  const RunResult first = run_serial(s, half);
  const RunResult resumed = run_serial(s, half, &first);

  EXPECT_TRUE(resumed.forest == straight.forest);
  EXPECT_EQ(resumed.counters.emitted, straight.counters.emitted);
  EXPECT_EQ(resumed.counters.bounces, straight.counters.bounces);
  EXPECT_EQ(resumed.rng_state, straight.rng_state);
}

TEST(Checkpoint, ManySmallLegsEqualOneBigRun) {
  const Scene s = scenes::furnace_box(0.4);
  RunConfig full;
  full.photons = 30000;
  const RunResult straight = run_serial(s, full);

  RunConfig leg;
  leg.photons = 10000;
  RunResult acc = run_serial(s, leg);
  acc = run_serial(s, leg, &acc);
  acc = run_serial(s, leg, &acc);
  EXPECT_TRUE(acc.forest == straight.forest);
}

TEST(Checkpoint, StreamRoundTrip) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 15000;
  const RunResult r = run_serial(s, cfg);

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  save_checkpoint(r, buf);
  RunResult loaded;
  ASSERT_TRUE(load_checkpoint(buf, loaded));
  EXPECT_TRUE(loaded.forest == r.forest);
  EXPECT_EQ(loaded.rng_state, r.rng_state);
  EXPECT_EQ(loaded.rng_mul, r.rng_mul);
  EXPECT_EQ(loaded.counters.bounces, r.counters.bounces);
}

TEST(Checkpoint, FileRoundTripAndResume) {
  const Scene s = scenes::cornell_box();
  RunConfig half;
  half.photons = 20000;
  const RunResult first = run_serial(s, half);

  const std::string path = ::testing::TempDir() + "/photon.ck";
  ASSERT_TRUE(save_checkpoint(first, path));
  RunResult loaded;
  ASSERT_TRUE(load_checkpoint(path, loaded));

  const RunResult resumed = run_serial(s, half, &loaded);
  RunConfig full;
  full.photons = 40000;
  const RunResult straight = run_serial(s, full);
  EXPECT_TRUE(resumed.forest == straight.forest);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGarbage) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  buf << "definitely not a checkpoint";
  RunResult r;
  EXPECT_FALSE(load_checkpoint(buf, r));
}

TEST(Checkpoint, RejectsMissingFile) {
  RunResult r;
  EXPECT_FALSE(load_checkpoint("/nonexistent_zzz/photon.ck", r));
}

TEST(Checkpoint, RoundTripsPerRankRngState) {
  // Format v2 carries each rank's generator state — what dist-particle's
  // bitwise resume restores (the resume itself is pinned in test_dist).
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 2000;
  cfg.workers = 3;
  cfg.batch = 500;
  cfg.adapt_batch = false;
  const RunResult r = run_distributed(s, cfg);

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  save_checkpoint(r, buf);
  RunResult loaded;
  ASSERT_TRUE(load_checkpoint(buf, loaded));
  ASSERT_EQ(loaded.ranks.size(), r.ranks.size());
  for (std::size_t i = 0; i < r.ranks.size(); ++i) {
    EXPECT_EQ(loaded.ranks[i].rng_state, r.ranks[i].rng_state) << "rank " << i;
    EXPECT_EQ(loaded.ranks[i].rng_mul, r.ranks[i].rng_mul) << "rank " << i;
    EXPECT_EQ(loaded.ranks[i].rng_add, r.ranks[i].rng_add) << "rank " << i;
  }
  EXPECT_TRUE(loaded.forest == r.forest);
}

// --- Fuzzing the loader: damaged bytes must be rejected cleanly — return
// false, never crash, and NEVER load (a silently-wrong resume would waste
// the multi-hour run the checkpoint exists to protect). Mirrors the framed-
// tree corrupt-buffer tests in test_binforest.

std::string checkpoint_bytes() {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 4000;
  const RunResult r = run_serial(s, cfg);
  std::ostringstream out(std::ios::binary);
  save_checkpoint(r, out);
  return out.str();
}

TEST(CheckpointFuzz, EveryTruncationIsRejected) {
  const std::string bytes = checkpoint_bytes();
  ASSERT_GT(bytes.size(), 64u);
  // Every prefix around the header plus a spread through the forest body.
  std::vector<std::size_t> cuts;
  for (std::size_t n = 0; n < std::min<std::size_t>(bytes.size(), 128); ++n) cuts.push_back(n);
  for (std::size_t n = 128; n < bytes.size(); n += 997) cuts.push_back(n);
  cuts.push_back(bytes.size() - 1);
  for (const std::size_t n : cuts) {
    std::istringstream in(bytes.substr(0, n), std::ios::binary);
    RunResult r;
    EXPECT_FALSE(load_checkpoint(in, r)) << "truncated at " << n;
  }
  // The untouched stream still loads — the cuts above failed for the right
  // reason.
  std::istringstream whole(bytes, std::ios::binary);
  RunResult r;
  EXPECT_TRUE(load_checkpoint(whole, r));
}

TEST(CheckpointFuzz, EveryBitFlipIsRejected) {
  const std::string bytes = checkpoint_bytes();
  Lcg48 rng(2026);
  for (int trial = 0; trial < 300; ++trial) {
    std::string damaged = bytes;
    const std::size_t pos = static_cast<std::size_t>(rng.uniform_int(damaged.size()));
    const int bit = static_cast<int>(rng.uniform_int(8));
    damaged[pos] = static_cast<char>(damaged[pos] ^ (1 << bit));
    std::istringstream in(damaged, std::ios::binary);
    RunResult r;
    // The checksum covers the whole payload; flips in the magic, length, or
    // checksum fields fail those comparisons instead.
    EXPECT_FALSE(load_checkpoint(in, r)) << "flip at byte " << pos << " bit " << bit;
  }
}

TEST(CheckpointFuzz, RandomNoiseNeverLoads) {
  Lcg48 rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(4096));
    std::string noise(n, '\0');
    for (char& c : noise) c = static_cast<char>(rng.uniform_int(256));
    std::istringstream in(noise, std::ios::binary);
    RunResult r;
    EXPECT_FALSE(load_checkpoint(in, r)) << "trial " << trial;
  }
}

// --- Typed rejection statuses: photon_cli prints WHICH check a refused
// checkpoint failed, so every distinct failure must map to its own status.

// FNV-1a-64 over the payload — mirrors the loader so tests can re-seal a
// deliberately edited payload.
std::uint64_t fnv64(const char* data, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

void put_u64(std::string& bytes, std::size_t at, std::uint64_t v) {
  std::memcpy(&bytes[at], &v, sizeof(v));
}

std::uint64_t get_u64(const std::string& bytes, std::size_t at) {
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data() + at, sizeof(v));
  return v;
}

// Re-seals an edited checkpoint: recomputes the payload checksum so the edit
// reaches the check under test instead of tripping the checksum first.
void reseal(std::string& bytes) {
  const std::uint64_t length = get_u64(bytes, 8);
  put_u64(bytes, 16 + static_cast<std::size_t>(length),
          fnv64(bytes.data() + 16, static_cast<std::size_t>(length)));
}

CheckpointStatus status_of(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  RunResult r;
  return load_checkpoint_status(in, r);
}

TEST(CheckpointStatusTest, ReportsEachDistinctFailure) {
  const std::string valid = checkpoint_bytes();
  ASSERT_EQ(status_of(valid), CheckpointStatus::kOk);

  std::string bad_magic = valid;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0xFF);
  EXPECT_EQ(status_of(bad_magic), CheckpointStatus::kBadMagic);

  // v1 magic ("PHOTONCK"): a real but unverifiable old format, distinct from
  // garbage.
  std::string v1 = valid;
  put_u64(v1, 0, 0x50484F544F4E434BULL);
  EXPECT_EQ(status_of(v1), CheckpointStatus::kOldVersion);

  std::string bad_length = valid;
  put_u64(bad_length, 8, (1ULL << 33) + 1);  // over the 8 GiB payload cap
  EXPECT_EQ(status_of(bad_length), CheckpointStatus::kBadLength);

  EXPECT_EQ(status_of(valid.substr(0, valid.size() / 2)), CheckpointStatus::kTruncated);
  EXPECT_EQ(status_of(valid.substr(0, 12)), CheckpointStatus::kTruncated);

  std::string flipped = valid;
  flipped[100] = static_cast<char>(flipped[100] ^ 1);
  EXPECT_EQ(status_of(flipped), CheckpointStatus::kChecksumMismatch);

  // Rank count claiming more per-rank state than the payload holds (payload
  // offset 64, after 3 RNG words + 5 counters), re-sealed so it reaches the
  // rank-section parse.
  std::string bad_ranks = valid;
  put_u64(bad_ranks, 16 + 64, 60000);  // < kMaxRanks, > what the payload holds
  reseal(bad_ranks);
  EXPECT_EQ(status_of(bad_ranks), CheckpointStatus::kBadRankSection);

  // Header says more ranks than the format cap allows.
  std::string over_cap = valid;
  put_u64(over_cap, 16 + 64, 1ULL << 20);
  reseal(over_cap);
  EXPECT_EQ(status_of(over_cap), CheckpointStatus::kBadHeader);

  // A sealed payload cut off right after the (zeroed) rank count: header
  // parses, forest section is missing.
  std::string no_forest = valid.substr(0, 16 + 72 + 8);
  put_u64(no_forest, 8, 72);
  put_u64(no_forest, 16 + 64, 0);  // nranks = 0
  reseal(no_forest);
  EXPECT_EQ(status_of(no_forest), CheckpointStatus::kBadForest);

  RunResult r;
  EXPECT_EQ(load_checkpoint_status("/nonexistent_zzz/photon.ck", r),
            CheckpointStatus::kOpenFailed);
}

TEST(CheckpointStatusTest, NamesAreStable) {
  EXPECT_STREQ(checkpoint_status_name(CheckpointStatus::kOk), "ok");
  EXPECT_STREQ(checkpoint_status_name(CheckpointStatus::kBadMagic), "bad-magic");
  EXPECT_STREQ(checkpoint_status_name(CheckpointStatus::kOldVersion), "old-version");
  EXPECT_STREQ(checkpoint_status_name(CheckpointStatus::kChecksumMismatch),
               "checksum-mismatch");
  EXPECT_STREQ(checkpoint_status_name(CheckpointStatus::kBadRankSection),
               "bad-rank-section");
}

// --- Atomic writes: save_checkpoint(path) stages to <path>.tmp, fsyncs, and
// renames. A process killed mid-write must never leave the PATH itself
// damaged — the previous generation survives, because losing the old
// checkpoint to a crash during the new one's write is exactly the failure a
// checkpoint exists to prevent.

TEST(CheckpointAtomicity, KillMidWriteNeverDamagesThePreviousFile) {
  const Scene s = scenes::cornell_box();
  RunConfig small;
  small.photons = 4000;
  const RunResult old_result = run_serial(s, small);
  RunConfig big;
  big.photons = 20000;
  const RunResult new_result = run_serial(s, big);

  const std::string path = ::testing::TempDir() + "/atomic.ck";
  ASSERT_TRUE(save_checkpoint(old_result, path));

  for (int trial = 0; trial < 8; ++trial) {
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      // Overwrite forever; the parent SIGKILLs us at an arbitrary point —
      // possibly mid-fwrite, mid-fsync, or between fsync and rename.
      for (;;) save_checkpoint(new_result, path);
    }
    usleep(static_cast<useconds_t>(1000 * (3 * trial + 1)));
    kill(child, SIGKILL);
    int status = 0;
    waitpid(child, &status, 0);

    RunResult loaded;
    ASSERT_EQ(load_checkpoint_status(path, loaded), CheckpointStatus::kOk) << "trial " << trial;
    // Whole generations only — the old file or the new one, never a torn mix.
    EXPECT_TRUE(loaded.counters.emitted == old_result.counters.emitted ||
                loaded.counters.emitted == new_result.counters.emitted)
        << "trial " << trial << ": emitted " << loaded.counters.emitted;
  }
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(CheckpointAtomicity, StaleTmpFromADeadWriterIsHarmless) {
  const std::string path = ::testing::TempDir() + "/stale.ck";
  {
    std::ofstream tmp(path + ".tmp", std::ios::binary);
    tmp << "half-written garbage from a crashed process";
  }

  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 4000;
  const RunResult r = run_serial(s, cfg);
  ASSERT_TRUE(save_checkpoint(r, path));

  RunResult loaded;
  EXPECT_EQ(load_checkpoint_status(path, loaded), CheckpointStatus::kOk);
  EXPECT_EQ(loaded.counters.emitted, r.counters.emitted);
  // The tmp staging file was consumed by the rename, not left behind.
  std::ifstream leftover(path + ".tmp");
  EXPECT_FALSE(leftover.good());
  std::remove(path.c_str());
}

TEST(CheckpointFuzz, TrailingGarbageAfterAValidPayloadStillLoads) {
  // The format is length-prefixed: a valid checkpoint followed by unrelated
  // bytes (e.g. a partially overwritten file that got longer) must load the
  // valid part.
  std::string bytes = checkpoint_bytes();
  bytes += "trailing garbage the loader must not touch";
  std::istringstream in(bytes, std::ios::binary);
  RunResult r;
  EXPECT_TRUE(load_checkpoint(in, r));
  EXPECT_GT(r.forest.tree_count(), 0u);
}

}  // namespace
}  // namespace photon
