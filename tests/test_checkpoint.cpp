#include "sim/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "geom/scenes.hpp"

namespace photon {
namespace {

TEST(Checkpoint, ResumeIsBitwiseIdenticalToStraightRun) {
  const Scene s = scenes::cornell_box();

  RunConfig full;
  full.photons = 40000;
  const RunResult straight = run_serial(s, full);

  RunConfig half;
  half.photons = 20000;
  const RunResult first = run_serial(s, half);
  const RunResult resumed = run_serial(s, half, &first);

  EXPECT_TRUE(resumed.forest == straight.forest);
  EXPECT_EQ(resumed.counters.emitted, straight.counters.emitted);
  EXPECT_EQ(resumed.counters.bounces, straight.counters.bounces);
  EXPECT_EQ(resumed.rng_state, straight.rng_state);
}

TEST(Checkpoint, ManySmallLegsEqualOneBigRun) {
  const Scene s = scenes::furnace_box(0.4);
  RunConfig full;
  full.photons = 30000;
  const RunResult straight = run_serial(s, full);

  RunConfig leg;
  leg.photons = 10000;
  RunResult acc = run_serial(s, leg);
  acc = run_serial(s, leg, &acc);
  acc = run_serial(s, leg, &acc);
  EXPECT_TRUE(acc.forest == straight.forest);
}

TEST(Checkpoint, StreamRoundTrip) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 15000;
  const RunResult r = run_serial(s, cfg);

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  save_checkpoint(r, buf);
  RunResult loaded;
  ASSERT_TRUE(load_checkpoint(buf, loaded));
  EXPECT_TRUE(loaded.forest == r.forest);
  EXPECT_EQ(loaded.rng_state, r.rng_state);
  EXPECT_EQ(loaded.rng_mul, r.rng_mul);
  EXPECT_EQ(loaded.counters.bounces, r.counters.bounces);
}

TEST(Checkpoint, FileRoundTripAndResume) {
  const Scene s = scenes::cornell_box();
  RunConfig half;
  half.photons = 20000;
  const RunResult first = run_serial(s, half);

  const std::string path = ::testing::TempDir() + "/photon.ck";
  ASSERT_TRUE(save_checkpoint(first, path));
  RunResult loaded;
  ASSERT_TRUE(load_checkpoint(path, loaded));

  const RunResult resumed = run_serial(s, half, &loaded);
  RunConfig full;
  full.photons = 40000;
  const RunResult straight = run_serial(s, full);
  EXPECT_TRUE(resumed.forest == straight.forest);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGarbage) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  buf << "definitely not a checkpoint";
  RunResult r;
  EXPECT_FALSE(load_checkpoint(buf, r));
}

TEST(Checkpoint, RejectsMissingFile) {
  RunResult r;
  EXPECT_FALSE(load_checkpoint("/nonexistent_zzz/photon.ck", r));
}

}  // namespace
}  // namespace photon
