// Behaviour of the count-driven refinement knobs (SplitPolicy::max_leaf_count
// and count_growth) — the storage/detail trade-off the examples tune.
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "hist/bintree.hpp"

namespace photon {
namespace {

BinCoords uniform_coords(Lcg48& rng) {
  BinCoords c;
  c.s = static_cast<float>(rng.uniform());
  c.t = static_cast<float>(rng.uniform());
  c.u = static_cast<float>(rng.uniform());
  c.theta = static_cast<float>(rng.uniform() * kTwoPi);
  return c;
}

std::size_t leaves_after(SplitPolicy policy, int photons, std::uint64_t seed = 3) {
  BinTree tree(policy);
  Lcg48 rng(seed);
  for (int i = 0; i < photons; ++i) tree.record(uniform_coords(rng), 0);
  return tree.leaf_count();
}

TEST(RefinementPolicy, SmallerThresholdMeansMoreLeaves) {
  SplitPolicy coarse, fine;
  coarse.max_leaf_count = 2048;
  fine.max_leaf_count = 128;
  EXPECT_GT(leaves_after(fine, 20000), leaves_after(coarse, 20000));
}

TEST(RefinementPolicy, FlatGrowthRefinesDeeper) {
  SplitPolicy doubling, flat;
  doubling.count_growth = 2.0;
  flat.count_growth = 1.0;
  EXPECT_GT(leaves_after(flat, 30000), leaves_after(doubling, 30000));
}

TEST(RefinementPolicy, FlatGrowthBoundsLeafResidency) {
  // With count_growth = 1 every leaf splits once it accumulates
  // max_leaf_count photons since creation; no leaf's split_n can exceed the
  // next power-of-two checkpoint above the threshold.
  SplitPolicy policy;
  policy.max_leaf_count = 256;
  policy.count_growth = 1.0;
  BinTree tree(policy);
  Lcg48 rng(4);
  for (int i = 0; i < 20000; ++i) tree.record(uniform_coords(rng), 0);
  for (std::size_t i = 0; i < tree.node_count(); ++i) {
    const BinNode& n = tree.node(static_cast<int>(i));
    if (n.is_leaf()) EXPECT_LT(n.split_n, 512u);
  }
}

TEST(RefinementPolicy, GrowthExponentControlsNodeScaling) {
  // Doubling thresholds give ~sqrt(n) nodes; the ratio of node counts when
  // n quadruples should be far below 4 (the flat-policy ratio).
  SplitPolicy doubling;
  doubling.count_growth = 2.0;
  const double small = static_cast<double>(leaves_after(doubling, 10000));
  const double large = static_cast<double>(leaves_after(doubling, 40000));
  EXPECT_LT(large / small, 3.0);
  EXPECT_GT(large / small, 1.2);  // but it does keep refining
}

TEST(RefinementPolicy, DepthTracksSplits) {
  SplitPolicy policy;
  policy.max_leaf_count = 128;
  policy.count_growth = 1.0;
  BinTree tree(policy);
  Lcg48 rng(5);
  for (int i = 0; i < 10000; ++i) tree.record(uniform_coords(rng), 0);
  // Node::depth must equal the number of ancestors.
  for (std::size_t i = 0; i < tree.node_count(); ++i) {
    const BinNode& n = tree.node(static_cast<int>(i));
    if (n.is_leaf()) continue;
    EXPECT_EQ(tree.node(n.left).depth, n.depth + 1);
    EXPECT_EQ(tree.node(n.right).depth, n.depth + 1);
  }
}

}  // namespace
}  // namespace photon
