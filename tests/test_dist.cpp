#include "par/dist.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "geom/scenes.hpp"
#include "sim/simulator.hpp"

namespace photon {
namespace {

class DistSimTest : public ::testing::TestWithParam<int> {};

TEST_P(DistSimTest, TracesTheGlobalBudget) {
  const int P = GetParam();
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 4000;
  cfg.adapt_batch = false;
  cfg.batch = 500;
  cfg.workers = P;
  const RunResult r = run_distributed(s, cfg);

  std::uint64_t traced = 0;
  for (const RankReport& rep : r.ranks) traced += rep.traced;
  EXPECT_GE(traced, cfg.photons);
  EXPECT_EQ(r.forest.emitted_total(), traced);
}

TEST_P(DistSimTest, MatchesUnionOfSerialLeapfrogRuns) {
  // The defining correctness property: distributing the bin forest must not
  // change the answer. Rank r draws from stream (seed, r, P), so the gathered
  // per-patch totals must equal the union of P serial leapfrog runs.
  const int P = GetParam();
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 2000 * static_cast<std::uint64_t>(P);
  cfg.adapt_batch = false;
  cfg.batch = 500;
  cfg.workers = P;
  const RunResult dist = run_distributed(s, cfg);

  std::vector<std::uint64_t> serial_tallies(s.patch_count(), 0);
  for (int rank = 0; rank < P; ++rank) {
    RunConfig sc;
    sc.photons = 2000;
    sc.seed = cfg.seed;
    sc.rank = rank;
    sc.nranks = P;
    const RunResult r = run_serial(s, sc);
    const auto tallies = r.forest.patch_tallies();
    for (std::size_t p = 0; p < tallies.size(); ++p) serial_tallies[p] += tallies[p];
  }

  const auto dist_tallies = dist.forest.patch_tallies();
  for (std::size_t p = 0; p < s.patch_count(); ++p) {
    EXPECT_NEAR(static_cast<double>(dist_tallies[p]), static_cast<double>(serial_tallies[p]),
                static_cast<double>(dist.forest.total_nodes()))
        << "patch " << p;
  }
}

TEST_P(DistSimTest, OwnershipCoversEveryPatch) {
  const int P = GetParam();
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 1000;
  cfg.adapt_batch = false;
  cfg.workers = P;
  const RunResult r = run_distributed(s, cfg);
  ASSERT_EQ(r.balance.owner.size(), s.patch_count());
  for (const int o : r.balance.owner) {
    EXPECT_GE(o, 0);
    EXPECT_LT(o, P);
  }
}

TEST_P(DistSimTest, ProcessedSumsToAllRecords) {
  const int P = GetParam();
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 3000;
  cfg.adapt_batch = false;
  cfg.batch = 250;
  cfg.workers = P;
  const RunResult r = run_distributed(s, cfg);

  std::uint64_t processed = 0, records = 0;
  for (const RankReport& rep : r.ranks) {
    processed += rep.processed;
    records += rep.counters.emitted + rep.counters.bounces;
  }
  // Every record (emission or reflection) is tallied exactly once by the
  // owner, whether local or forwarded.
  EXPECT_EQ(processed, records);
}

TEST_P(DistSimTest, MessagesFlowWhenDistributed) {
  const int P = GetParam();
  if (P < 2) GTEST_SKIP();
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 2000;
  cfg.adapt_batch = false;
  cfg.workers = P;
  const RunResult r = run_distributed(s, cfg);
  std::uint64_t bytes = 0;
  for (const RankReport& rep : r.ranks) bytes += rep.sent_bytes;
  EXPECT_GT(bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistSimTest, ::testing::Values(1, 2, 4));

TEST(DistSim, NaiveAndBestFitBothCorrect) {
  const Scene s = scenes::cornell_box();
  RunConfig best, naive;
  best.photons = naive.photons = 4000;
  best.adapt_batch = naive.adapt_batch = false;
  naive.bestfit = false;
  best.workers = 4;
  const RunResult rb = run_distributed(s, best);
  naive.workers = 4;
  const RunResult rn = run_distributed(s, naive);

  // Same photons traced either way; only the ownership differs.
  const auto tb = rb.forest.patch_tallies();
  const auto tn = rn.forest.patch_tallies();
  for (std::size_t p = 0; p < s.patch_count(); ++p) {
    EXPECT_NEAR(static_cast<double>(tb[p]), static_cast<double>(tn[p]),
                static_cast<double>(rb.forest.total_nodes()));
  }
}

TEST(DistSim, BestFitBalancesProcessedCounts) {
  // Table 5.2's claim, on our harpsichord room: bin packing evens out the
  // per-processor photon processing counts relative to naive assignment.
  const Scene s = scenes::harpsichord_room();
  RunConfig best, naive;
  best.photons = naive.photons = 8000;
  best.adapt_batch = naive.adapt_batch = false;
  best.batch = naive.batch = 500;
  naive.bestfit = false;
  best.workers = 8;
  const RunResult rb = run_distributed(s, best);
  naive.workers = 8;
  const RunResult rn = run_distributed(s, naive);

  auto spread = [](const RunResult& r) {
    std::uint64_t lo = UINT64_MAX, hi = 0;
    for (const RankReport& rep : r.ranks) {
      lo = std::min(lo, rep.processed);
      hi = std::max(hi, rep.processed);
    }
    return static_cast<double>(hi) / static_cast<double>(std::max<std::uint64_t>(lo, 1));
  };
  EXPECT_LT(spread(rb), spread(rn));
}

TEST(DistSim, AdaptiveBatchesGrow) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 30000;
  cfg.adapt_batch = true;
  cfg.batch_policy.initial = 500;
  cfg.workers = 2;
  const RunResult r = run_distributed(s, cfg);
  ASSERT_FALSE(r.ranks[0].batch_sizes.empty());
  EXPECT_EQ(r.ranks[0].batch_sizes.front(), 500u);
  // All ranks agreed on every batch size.
  EXPECT_EQ(r.ranks[0].batch_sizes, r.ranks[1].batch_sizes);
}

TEST(DistSim, GatheredForestIsComplete) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 6000;
  cfg.adapt_batch = false;
  cfg.workers = 4;
  const RunResult r = run_distributed(s, cfg);
  // Every patch that received probe photons must show tallies in the
  // gathered forest (owners were spread across ranks).
  const auto tallies = r.forest.patch_tallies();
  const std::uint64_t nonzero =
      static_cast<std::uint64_t>(std::count_if(tallies.begin(), tallies.end(),
                                               [](std::uint64_t t) { return t > 0; }));
  EXPECT_GT(nonzero, s.patch_count() / 2);
  EXPECT_FALSE(r.trace.points.empty());
}

// Determinism through the RouterSink/overlap path: rank count x batch size
// (the exchange threshold) must never make a run irreproducible.
class DistDeterminismTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(DistDeterminismTest, RepeatedRunsAreBitwiseIdentical) {
  const auto [P, batch] = GetParam();
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 600;
  cfg.adapt_batch = false;
  cfg.batch = batch;
  cfg.workers = P;
  const RunResult a = run_distributed(s, cfg);
  const RunResult b = run_distributed(s, cfg);
  EXPECT_TRUE(a.forest == b.forest) << "P=" << P << " batch=" << batch;
  EXPECT_EQ(a.counters.bounces, b.counters.bounces);
}

INSTANTIATE_TEST_SUITE_P(RanksAndBatches, DistDeterminismTest,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1u, 64u, 4096u)));

class DistSerialEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistSerialEquivalenceTest, OneRankIsBitwiseSerialAtAnyBatch) {
  // The acceptance bar for the zero-copy/overlap rework: dist@1 stays
  // bitwise identical to serial at every exchange threshold.
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 1500;
  cfg.adapt_batch = false;
  cfg.batch = GetParam();
  cfg.workers = 1;
  const RunResult dist = run_distributed(s, cfg);

  RunConfig sc;
  sc.photons = cfg.photons;
  sc.seed = cfg.seed;
  sc.rank = 0;
  sc.nranks = 1;
  const RunResult serial = run_serial(s, sc);
  EXPECT_TRUE(dist.forest == serial.forest) << "batch=" << cfg.batch;
}

INSTANTIATE_TEST_SUITE_P(Batches, DistSerialEquivalenceTest,
                         ::testing::Values(1u, 64u, 4096u));

TEST(DistSim, ResumeAtSameShapeIsABitwiseContinuation) {
  // The checkpoint carries every rank's exact generator state, and owned
  // records apply in canonical batch order, so leg1 + leg2 at the same rank
  // count — with leg1 ending on a batch boundary — reproduces an
  // uninterrupted run bit for bit (the ROADMAP's dist-resume open item).
  const Scene s = scenes::cornell_box();
  RunConfig leg1_cfg;
  leg1_cfg.photons = 2000;  // 2 rounds of 500 x 2 ranks
  leg1_cfg.adapt_batch = false;
  leg1_cfg.batch = 500;
  leg1_cfg.workers = 2;
  const RunResult leg1 = run_distributed(s, leg1_cfg);
  for (const RankReport& rep : leg1.ranks) ASSERT_NE(rep.rng_mul, 0u);

  RunConfig leg2_cfg = leg1_cfg;
  leg2_cfg.photons = 1000;
  const RunResult resumed = run_distributed(s, leg2_cfg, &leg1);

  RunConfig straight_cfg = leg1_cfg;
  straight_cfg.photons = 3000;
  const RunResult straight = run_distributed(s, straight_cfg);

  EXPECT_TRUE(resumed.forest == straight.forest);
  EXPECT_EQ(resumed.counters.emitted, straight.counters.emitted);
  EXPECT_EQ(resumed.counters.bounces, straight.counters.bounces);
  // And the continuation's end state matches too, so a chain of resumed legs
  // keeps reproducing the uninterrupted run.
  for (std::size_t r = 0; r < resumed.ranks.size(); ++r) {
    EXPECT_EQ(resumed.ranks[r].rng_state, straight.ranks[r].rng_state) << "rank " << r;
  }
}

TEST(DistSim, ResumeAtDifferentShapeFallsBackToDisjointStreams) {
  // A checkpoint from another rank count has no state for these streams; the
  // continuation must still conserve every tally and add exactly
  // config.photons fresh photons (the pre-PR-5 behavior).
  const Scene s = scenes::cornell_box();
  RunConfig leg1_cfg;
  leg1_cfg.photons = 2000;
  leg1_cfg.adapt_batch = false;
  leg1_cfg.batch = 500;
  leg1_cfg.workers = 4;
  const RunResult leg1 = run_distributed(s, leg1_cfg);

  RunConfig leg2_cfg = leg1_cfg;
  leg2_cfg.workers = 2;
  leg2_cfg.photons = 1000;
  const RunResult resumed = run_distributed(s, leg2_cfg, &leg1);
  EXPECT_EQ(resumed.counters.emitted, 3000u);
  EXPECT_EQ(resumed.forest.emitted_total(), 3000u);
}

TEST(DistSim, ResumeConservesAndReproduces) {
  // Distributed resume: the checkpoint's trees fold into the partitions
  // (BinForest/BinTree merge) and the continuation adds exactly
  // config.photons more photons on a disjoint stream.
  const Scene s = scenes::cornell_box();
  RunConfig leg1_cfg;
  leg1_cfg.photons = 2000;
  leg1_cfg.adapt_batch = false;
  leg1_cfg.batch = 500;
  leg1_cfg.workers = 4;
  const RunResult leg1 = run_distributed(s, leg1_cfg);

  RunConfig leg2_cfg = leg1_cfg;
  leg2_cfg.photons = 1000;
  const RunResult resumed = run_distributed(s, leg2_cfg, &leg1);
  const RunResult resumed_again = run_distributed(s, leg2_cfg, &leg1);

  EXPECT_EQ(resumed.forest.emitted_total(), 3000u);
  EXPECT_EQ(resumed.counters.emitted, 3000u);
  // Every tally of both legs survives the fold (merge conserves counts).
  std::uint64_t leg2_records = 0;
  for (const RankReport& rep : resumed.ranks) leg2_records += rep.processed;
  EXPECT_EQ(resumed.forest.total_tally_all(),
            leg1.forest.total_tally_all() + leg2_records);
  EXPECT_TRUE(resumed.forest == resumed_again.forest);
}

TEST(DistSim, SingleRankPutsNothingOnTheWire) {
  // (dist@1 == serial bitwise is pinned, per scene, by the conformance
  // suite; this keeps the traffic claim.)
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 1000;
  cfg.adapt_batch = false;
  cfg.batch = 500;
  cfg.workers = 1;
  const RunResult dist = run_distributed(s, cfg);
  EXPECT_EQ(dist.ranks[0].sent_bytes, 0u);
}

}  // namespace
}  // namespace photon
