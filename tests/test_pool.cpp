#include "engine/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "geom/octree.hpp"
#include "geom/scenes.hpp"

namespace photon {
namespace {

// A deterministic per-chunk product: out[c] depends only on c, so any
// schedule that runs every chunk exactly once yields the identical vector.
std::vector<std::uint64_t> run_chunk_products(WorkerPool& pool, std::uint64_t chunks,
                                              int width, PoolRunStats* stats = nullptr) {
  std::vector<std::uint64_t> out(chunks, 0);
  pool.run(
      chunks, width,
      [&](std::uint64_t c, int) { out[static_cast<std::size_t>(c)] = c * 2654435761ULL + 1; },
      stats);
  return out;
}

TEST(WorkerPool, RunsEveryChunkExactlyOnce) {
  WorkerPool pool(3);
  const std::uint64_t chunks = 1000;
  std::vector<std::atomic<std::uint32_t>> hits(chunks);
  PoolRunStats stats;
  pool.run(chunks, 4, [&](std::uint64_t c, int) { ++hits[static_cast<std::size_t>(c)]; },
           &stats);
  for (std::uint64_t c = 0; c < chunks; ++c) {
    EXPECT_EQ(hits[static_cast<std::size_t>(c)].load(), 1u) << "chunk " << c;
  }
  EXPECT_EQ(stats.chunks, chunks);
  EXPECT_EQ(std::accumulate(stats.worker_chunks.begin(), stats.worker_chunks.end(),
                            std::uint64_t{0}),
            chunks);
  // Every chunk's executor was recorded and is a valid slot.
  ASSERT_EQ(stats.chunk_worker.size(), chunks);
  for (const std::int32_t w : stats.chunk_worker) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 4);
  }
}

TEST(WorkerPool, WorkerSlotIsAlwaysBelowWidth) {
  WorkerPool pool(7);  // more helpers than the requested width
  std::atomic<bool> ok{true};
  pool.run(256, 3, [&](std::uint64_t, int slot) {
    if (slot < 0 || slot >= 3) ok = false;
  });
  EXPECT_TRUE(ok);
}

TEST(WorkerPool, OutputIsIdenticalForEveryWidthAndSchedule) {
  WorkerPool pool(7);
  const std::uint64_t chunks = 512;
  const std::vector<std::uint64_t> reference = run_chunk_products(pool, chunks, 1);

  // Widths beyond hardware_concurrency are deliberate: oversubscription must
  // only change timing, never output.
  for (int width : {2, 4, 8}) {
    EXPECT_EQ(run_chunk_products(pool, chunks, width), reference) << "width " << width;
  }
  {
    WorkerPool::ScheduleGuard guard(WorkerPool::TestSchedule::kForceSteal);
    EXPECT_EQ(run_chunk_products(pool, chunks, 4), reference) << "forced steal";
  }
  for (std::uint64_t seed : {7ull, 99ull, 4242ull}) {
    WorkerPool::ScheduleGuard guard(WorkerPool::TestSchedule::kShuffle, seed);
    EXPECT_EQ(run_chunk_products(pool, chunks, 8), reference) << "shuffle seed " << seed;
  }
  {
    WorkerPool::ScheduleGuard guard(WorkerPool::TestSchedule::kStaticOnly);
    PoolRunStats stats;
    EXPECT_EQ(run_chunk_products(pool, chunks, 4, &stats), reference) << "static only";
    EXPECT_EQ(stats.steals, 0u);
  }
}

TEST(WorkerPool, StealsAreCountedAndAttributedToTheThief) {
  // Deterministic steal: two chunks, both statically owned by slot 0
  // (kForceSteal), and each chunk's body blocks until both chunks have
  // started. The caller cannot run both (it is stuck inside the first), so
  // the helper MUST steal the second — exactly one steal, charged to slot 1.
  WorkerPool pool(1);
  WorkerPool::ScheduleGuard guard(WorkerPool::TestSchedule::kForceSteal);
  std::atomic<int> started{0};
  PoolRunStats stats;
  pool.run(
      2, 2,
      [&](std::uint64_t, int) {
        ++started;
        while (started.load() < 2) std::this_thread::yield();
      },
      &stats);
  EXPECT_EQ(stats.steals, 1u);
  ASSERT_EQ(stats.worker_steals.size(), 2u);
  EXPECT_EQ(stats.worker_steals[0], 0u);
  EXPECT_EQ(stats.worker_steals[1], 1u);
  EXPECT_EQ(stats.worker_chunks[0], 1u);
  EXPECT_EQ(stats.worker_chunks[1], 1u);
}

TEST(WorkerPool, ForcedStealStillRunsEverythingAtWidthOne) {
  WorkerPool pool(2);
  WorkerPool::ScheduleGuard guard(WorkerPool::TestSchedule::kForceSteal);
  const std::vector<std::uint64_t> out = run_chunk_products(pool, 64, 1);
  for (std::uint64_t c = 0; c < 64; ++c) {
    EXPECT_EQ(out[static_cast<std::size_t>(c)], c * 2654435761ULL + 1);
  }
}

TEST(WorkerPool, PropagatesTheFirstException) {
  WorkerPool pool(3);
  EXPECT_THROW(pool.run(100, 4,
                        [&](std::uint64_t c, int) {
                          if (c == 37) throw std::runtime_error("chunk 37 failed");
                        }),
               std::runtime_error);
  // The pool survives a throwing job: the next run works normally.
  const std::vector<std::uint64_t> out = run_chunk_products(pool, 32, 4);
  EXPECT_EQ(out.size(), 32u);
}

TEST(WorkerPool, NestedRunExecutesInline) {
  WorkerPool pool(3);
  std::vector<std::uint64_t> outer(8, 0);
  pool.run(8, 4, [&](std::uint64_t o, int) {
    // A run() issued from inside a pool task must not deadlock on the job
    // slot — it executes its chunks inline on this worker.
    std::vector<std::uint64_t> inner(16, 0);
    WorkerPool::instance().run(16, 4, [&](std::uint64_t i, int) {
      inner[static_cast<std::size_t>(i)] = i + 1;
    });
    outer[static_cast<std::size_t>(o)] =
        std::accumulate(inner.begin(), inner.end(), std::uint64_t{0});
  });
  for (const std::uint64_t v : outer) EXPECT_EQ(v, 136u);  // 1+2+...+16
}

TEST(WorkerPool, OctreeBuildFromInsideAPoolTaskMatchesDirectBuild) {
  // The real nested-submit consumer: a parallel Octree::build issued from a
  // pool task (the future photon-service shape). The topology pin must hold.
  const Scene s = scenes::cornell_box();
  Octree::BuildParams params;
  params.workers = 4;
  Octree direct;
  direct.build(s.patches(), params);

  Octree nested;
  WorkerPool::instance().run(1, 1, [&](std::uint64_t, int) {
    nested.build(s.patches(), params);
  });
  EXPECT_TRUE(nested.identical_to(direct));
}

TEST(WorkerPool, ShutdownIsIdempotentAndRunFallsBackInline) {
  WorkerPool pool(2);
  EXPECT_EQ(pool.helper_count(), 2);
  pool.shutdown();
  pool.shutdown();  // idempotent
  EXPECT_EQ(pool.helper_count(), 0);
  // run() after shutdown degrades to inline execution, full coverage.
  const std::vector<std::uint64_t> out = run_chunk_products(pool, 64, 4);
  for (std::uint64_t c = 0; c < 64; ++c) {
    EXPECT_EQ(out[static_cast<std::size_t>(c)], c * 2654435761ULL + 1);
  }
}

TEST(WorkerPool, GrowsLazilyToTheRequestedWidth) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.helper_count(), 0);
  run_chunk_products(pool, 32, 4);  // needs 3 helpers -> grows
  EXPECT_EQ(pool.helper_count(), 3);
  run_chunk_products(pool, 32, 2);  // narrower run must not shrink the pool
  EXPECT_EQ(pool.helper_count(), 3);
}

TEST(WorkerPool, ZeroChunksIsANoOp) {
  WorkerPool pool(1);
  bool ran = false;
  PoolRunStats stats;
  pool.run(0, 4, [&](std::uint64_t, int) { ran = true; }, &stats);
  EXPECT_FALSE(ran);
  EXPECT_EQ(stats.chunks, 0u);
}

TEST(WorkerPool, ManyConcurrentSubmittersStayCorrect) {
  // The service shape: several jobs' batch windows multiplexed onto one pool
  // from different threads. Every run must still execute its chunks exactly
  // once and produce the deterministic per-chunk products.
  WorkerPool pool(4);
  const std::vector<std::uint64_t> reference = run_chunk_products(pool, 256, 2);
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 8; ++round) {
        if (run_chunk_products(pool, 256, 2) != reference) ok = false;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_TRUE(ok);
}

TEST(WorkerPool, ConcurrentExternalRunsDispatchInArrivalOrder) {
  // Fair share for the service: the dispatch slot is a ticket queue, so
  // concurrent submitters are served strictly in arrival order — a bare
  // mutex would let the OS pick an arbitrary waiter and starve early
  // arrivals. Arrival order is made unambiguous by staggering the
  // submitters while a blocker run holds the slot.
  WorkerPool pool(3);
  std::atomic<bool> release{false};
  std::atomic<bool> blocker_started{false};
  std::thread blocker([&] {
    pool.run(1, 1, [&](std::uint64_t, int) {
      blocker_started = true;
      while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  });
  while (!blocker_started.load()) std::this_thread::yield();

  std::mutex order_m;
  std::vector<int> dispatch_order;
  std::vector<std::thread> submitters;
  for (int i = 0; i < 4; ++i) {
    submitters.emplace_back([&, i] {
      std::this_thread::sleep_for(std::chrono::milliseconds(60 * (i + 1)));
      pool.run(16, 2, [&](std::uint64_t c, int) {
        if (c == 0) {  // chunk 0 runs exactly once per run — marks dispatch
          std::lock_guard<std::mutex> lock(order_m);
          dispatch_order.push_back(i);
        }
      });
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  release = true;
  blocker.join();
  for (std::thread& t : submitters) t.join();

  ASSERT_EQ(dispatch_order.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(dispatch_order[static_cast<std::size_t>(i)], i) << "ticket order violated";
  }
}

TEST(WorkerPool, ChunkCountGrid) {
  EXPECT_EQ(chunk_count(0, 64), 0u);
  EXPECT_EQ(chunk_count(1, 64), 1u);
  EXPECT_EQ(chunk_count(64, 64), 1u);
  EXPECT_EQ(chunk_count(65, 64), 2u);
  EXPECT_EQ(chunk_count(4001, 64), 63u);
  EXPECT_EQ(chunk_count(10, 0), 10u);  // zero grain clamps to 1
}

}  // namespace
}  // namespace photon
