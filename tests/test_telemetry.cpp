// The streamed speed trace (RunConfig::trace_path): points append to disk as
// they are sampled instead of accumulating in RAM, and the file reproduces
// the in-memory trace exactly.
#include "engine/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "engine/backend.hpp"
#include "engine/governor.hpp"
#include "geom/scenes.hpp"

namespace photon {
namespace {

std::vector<SpeedPoint> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  std::vector<SpeedPoint> points;
  std::string line;
  while (std::getline(in, line)) {
    SpeedPoint p;
    if (TraceWriter::parse(line, p)) points.push_back(p);
  }
  return points;
}

std::vector<MemoryPoint> read_memory_file(const std::string& path) {
  std::ifstream in(path);
  std::vector<MemoryPoint> points;
  std::string line;
  while (std::getline(in, line)) {
    MemoryPoint p;
    if (TraceWriter::parse(line, p)) points.push_back(p);
  }
  return points;
}

TEST(TraceStream, StreamedFileReproducesTheInMemoryTrace) {
  // Drive a streaming and a non-streaming sampler through the identical
  // sample sequence (externally supplied times, so both see the same data);
  // the parsed file must reproduce the in-memory points bit for bit.
  const std::string path = ::testing::TempDir() + "/trace_points.jsonl";
  std::remove(path.c_str());

  SpeedSampler memory_sampler;
  SpeedSampler stream_sampler(path);
  const double times[] = {0.125, 0.25, 0.5, 1.0 / 3.0, 2.75};
  const std::uint64_t photons[] = {100, 2048, 40000, 123457, 1000000};
  for (int i = 0; i < 5; ++i) {
    memory_sampler.sample_at(times[i], photons[i]);
    stream_sampler.sample_at(times[i], photons[i]);
  }
  const SpeedTrace memory_trace = memory_sampler.finish(1000000);
  const SpeedTrace streamed_trace = stream_sampler.finish(1000000);

  // Streaming mode holds nothing in RAM; the totals still agree.
  EXPECT_TRUE(streamed_trace.points.empty());
  EXPECT_EQ(streamed_trace.total_photons, memory_trace.total_photons);

  const std::vector<SpeedPoint> streamed = read_trace_file(path);
  ASSERT_EQ(streamed.size(), memory_trace.points.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].time_s, memory_trace.points[i].time_s) << "point " << i;
    EXPECT_EQ(streamed[i].photons, memory_trace.points[i].photons) << "point " << i;
    EXPECT_EQ(streamed[i].rate, memory_trace.points[i].rate) << "point " << i;
  }
  std::remove(path.c_str());
}

TEST(TraceStream, MemoryPointsInterleaveWithSpeedPointsAndRoundTrip) {
  // Speed and memory points share the trace file; each parse overload must
  // pick out exactly its own lines, reproducing both curves bit for bit.
  const std::string path = ::testing::TempDir() + "/trace_mixed.jsonl";
  std::remove(path.c_str());

  SpeedSampler memory_sampler;
  SpeedSampler stream_sampler(path);
  const std::uint64_t photons[] = {100, 2048, 40000};
  const std::uint64_t bytes[] = {1u << 14, 1u << 16, (1u << 16) + 13};
  for (int i = 0; i < 3; ++i) {
    memory_sampler.sample_at(0.5 * (i + 1), photons[i]);
    memory_sampler.sample_memory(photons[i], bytes[i]);
    stream_sampler.sample_at(0.5 * (i + 1), photons[i]);
    stream_sampler.sample_memory(photons[i], bytes[i]);
  }

  // Non-streaming mode accumulates the curve for RunResult::memory...
  const std::vector<MemoryPoint> accumulated = memory_sampler.take_memory();
  ASSERT_EQ(accumulated.size(), 3u);
  // ...streaming mode holds nothing in RAM and spills to the shared file.
  EXPECT_TRUE(stream_sampler.take_memory().empty());

  const std::vector<MemoryPoint> streamed = read_memory_file(path);
  ASSERT_EQ(streamed.size(), accumulated.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].photons, accumulated[i].photons) << "point " << i;
    EXPECT_EQ(streamed[i].bytes, accumulated[i].bytes) << "point " << i;
  }
  // The speed-point reader still sees its three points plus no memory lines.
  EXPECT_EQ(read_trace_file(path).size(), 3u);
  std::remove(path.c_str());
}

TEST(TraceStream, SerialRunStreamsItsMemoryCurve) {
  const std::string path = ::testing::TempDir() + "/trace_serial_memory.jsonl";
  std::remove(path.c_str());

  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 2000;
  cfg.batch = 500;
  cfg.trace_path = path;
  const RunResult r = make_backend("serial")->run(s, cfg);

  // The curve went to disk, not into the result.
  EXPECT_TRUE(r.memory.empty());
  const std::vector<MemoryPoint> streamed = read_memory_file(path);
  ASSERT_EQ(streamed.size(), 4u);  // one per batch
  EXPECT_EQ(streamed.back().photons, cfg.photons);
  for (std::size_t i = 1; i < streamed.size(); ++i) {
    EXPECT_GE(streamed[i].bytes, streamed[i - 1].bytes) << "forest never shrinks";
  }
  std::remove(path.c_str());
}

// ---- Preempt -> resume replay (the JSONL duplication fix) ------------------

TEST(TraceResume, ResumeDropsReplayedRowsAndKeepsTheFileMonotone) {
  // The bug: a preempted leg left its rows in the file, and the resumed leg
  // appended the SAME window indices again — the round-trip parse saw a
  // sawtooth. The sampler now truncates to rows at-or-below the resume base
  // and appends the new leg offset to ABSOLUTE photon counts.
  const std::string path = ::testing::TempDir() + "/trace_resume.jsonl";
  std::remove(path.c_str());

  {
    SpeedSampler leg1(path);
    leg1.sample_at(0.25, 500);
    leg1.sample_at(0.50, 1000);
    leg1.sample_at(0.75, 1500);  // beyond where the resume will restart —
    leg1.sample_memory(1500, 1u << 16);  // both kinds must be truncated
    (void)leg1.finish(1500);
  }
  ASSERT_EQ(read_trace_file(path).size(), 3u);

  // Resume from photon 1000: rows above the base are the replayed tail of a
  // leg whose windows re-run, so they go; rows at or below it stay.
  {
    SpeedSampler leg2(path, 1000);
    leg2.sample_at(0.30, 500);   // leg-relative; lands at absolute 1500
    leg2.sample_at(0.55, 1000);  // absolute 2000
    leg2.sample_memory(1000, 1u << 17);
    (void)leg2.finish(1000);
  }

  const std::vector<SpeedPoint> rows = read_trace_file(path);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].photons, 500u);
  EXPECT_EQ(rows[1].photons, 1000u);
  EXPECT_EQ(rows[2].photons, 1500u);  // absolute, not leg-relative 500
  EXPECT_EQ(rows[3].photons, 2000u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].photons, rows[i - 1].photons) << "row " << i;
  }
  const std::vector<MemoryPoint> memory = read_memory_file(path);
  ASSERT_EQ(memory.size(), 1u);  // leg 1's row was above the base — replaced
  EXPECT_EQ(memory[0].photons, 2000u);
  std::remove(path.c_str());
}

TEST(TraceResume, GovernedPreemptThenResumeRoundTripsExactly) {
  // End to end on a real backend: preempt a governed run at the first window
  // boundary, resume it through the same trace file, and require the file to
  // parse to one strictly-monotone curve ending at the full budget — no
  // duplicated windows, no phantom full-count terminal row from the
  // preempted leg.
  const std::string path = ::testing::TempDir() + "/trace_preempt.jsonl";
  std::remove(path.c_str());

  const Scene s = scenes::cornell_box();
  const auto backend = make_backend("shared");
  RunConfig cfg;
  cfg.photons = 2000;
  cfg.batch = 500;
  cfg.workers = 2;
  cfg.adapt_batch = false;
  cfg.trace_path = path;
  cfg.governed = true;
  cfg.control = std::make_shared<RunControl>();

  cfg.control->request_preempt();
  const RunResult part = backend->run(s, cfg, nullptr);
  ASSERT_EQ(part.status, RunStatus::kPreempted);
  ASSERT_LT(part.counters.emitted, 2000u);
  const std::vector<SpeedPoint> partial = read_trace_file(path);
  ASSERT_FALSE(partial.empty());
  // The preempted leg's last row reports what was actually traced — not the
  // requested total.
  EXPECT_EQ(partial.back().photons, part.counters.emitted);

  RunConfig rest = cfg;
  rest.photons = 2000 - part.counters.emitted;
  const RunResult done = backend->run(s, rest, &part);
  ASSERT_EQ(done.status, RunStatus::kComplete);

  const std::vector<SpeedPoint> rows = read_trace_file(path);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows.back().photons, 2000u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].photons, rows[i - 1].photons)
        << "row " << i << ": replayed or duplicated window in the trace file";
  }
  std::remove(path.c_str());
}

class TraceStreamBackendTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TraceStreamBackendTest, BackendStreamsItsTraceToDisk) {
  const std::string path =
      ::testing::TempDir() + "/trace_" + GetParam() + ".jsonl";
  std::remove(path.c_str());

  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 2000;
  cfg.batch = 500;
  cfg.workers = 2;
  cfg.groups = 2;
  cfg.adapt_batch = false;
  cfg.trace_path = path;
  const RunResult r = make_backend(GetParam())->run(s, cfg);

  // Points went to disk, not to RAM; the terminal point closes the file with
  // the full photon budget.
  EXPECT_TRUE(r.trace.points.empty());
  EXPECT_EQ(r.trace.total_photons, cfg.photons);
  const std::vector<SpeedPoint> streamed = read_trace_file(path);
  ASSERT_FALSE(streamed.empty());
  EXPECT_EQ(streamed.back().photons, cfg.photons);
  for (std::size_t i = 1; i < streamed.size(); ++i) {
    EXPECT_GE(streamed[i].photons, streamed[i - 1].photons) << "point " << i;
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Backends, TraceStreamBackendTest,
                         ::testing::Values("serial", "shared", "dist-particle", "dist-spatial",
                                           "hybrid"));

}  // namespace
}  // namespace photon
