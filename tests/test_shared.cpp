#include "par/shared.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "engine/pool.hpp"
#include "geom/scenes.hpp"
#include "sim/simulator.hpp"

namespace photon {
namespace {

class SharedSimTest : public ::testing::TestWithParam<int> {};

TEST_P(SharedSimTest, TracesExactlyTheRequestedPhotons) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 4001;  // deliberately not divisible by the thread count
  cfg.workers = GetParam();
  const RunResult r = run_shared(s, cfg);

  EXPECT_EQ(r.counters.emitted, cfg.photons);
  EXPECT_EQ(r.forest.emitted_total(), cfg.photons);
  const std::uint64_t traced = std::accumulate(r.per_thread_traced.begin(),
                                               r.per_thread_traced.end(), std::uint64_t{0});
  EXPECT_EQ(traced, cfg.photons);
}

TEST_P(SharedSimTest, PoolTelemetryAccountsForEveryPhotonAndChunk) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 4001;  // deliberately not divisible by the chunk size
  cfg.workers = GetParam();
  cfg.chunk = 64;
  const RunResult r = run_shared(s, cfg);

  // Dynamic stealing makes the per-worker split uneven, but the telemetry
  // must still account for every photon and every chunk exactly.
  ASSERT_EQ(r.pool.worker_photons.size(), static_cast<std::size_t>(cfg.workers));
  EXPECT_EQ(std::accumulate(r.pool.worker_photons.begin(), r.pool.worker_photons.end(),
                            std::uint64_t{0}),
            cfg.photons);
  EXPECT_EQ(r.pool.worker_photons, r.per_thread_traced);
  EXPECT_EQ(r.pool.chunk_size, cfg.chunk);
  EXPECT_EQ(r.pool.chunks, chunk_count(cfg.photons, cfg.chunk));
  EXPECT_EQ(std::accumulate(r.pool.worker_chunks.begin(), r.pool.worker_chunks.end(),
                            std::uint64_t{0}),
            r.pool.chunks);
  EXPECT_EQ(std::accumulate(r.pool.worker_steals.begin(), r.pool.worker_steals.end(),
                            std::uint64_t{0}),
            r.pool.steals);
}

TEST_P(SharedSimTest, TalliesConserveRecords) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 5000;
  cfg.workers = GetParam();
  const RunResult r = run_shared(s, cfg);

  // Total records = emission tallies + reflection tallies. Splits only
  // redistribute (one photon of rounding per split at most).
  const std::uint64_t expected = r.counters.emitted + r.counters.bounces;
  EXPECT_NEAR(static_cast<double>(r.forest.total_tally_all()),
              static_cast<double>(expected), static_cast<double>(r.forest.total_nodes()));
}

TEST_P(SharedSimTest, BitwiseMatchesSerialPhotonStreamReference) {
  // The pool-backed backend's determinism contract: at EVERY worker count
  // the populated forest is bitwise identical to the serial photon-stream
  // reference — a strictly stronger pin than the old leapfrog-union totals.
  const int T = GetParam();
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 6000;
  cfg.workers = T;
  cfg.chunk = 37;  // odd grain: chunk size must not matter either
  const RunResult shared = run_shared(s, cfg);

  RunConfig rc = cfg;
  rc.photon_streams = true;
  const RunResult ref = run_serial(s, rc);

  EXPECT_TRUE(ref.forest == shared.forest) << "workers=" << T;
  EXPECT_EQ(ref.counters.bounces, shared.counters.bounces);
  EXPECT_EQ(ref.counters.absorbed, shared.counters.absorbed);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, SharedSimTest, ::testing::Values(1, 2, 4, 8));

TEST(SharedSim, BitwiseUnderAdversarialStealSchedules) {
  // The forced-steal hook hands every chunk's static home to slot 0 (all
  // other workers must steal); the shuffle hook hands chunks out in a seeded
  // random permutation. Neither may perturb a single bit of the forest.
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 5000;
  cfg.workers = 4;
  cfg.chunk = 16;

  RunConfig rc = cfg;
  rc.photon_streams = true;
  const RunResult ref = run_serial(s, rc);

  {
    WorkerPool::ScheduleGuard guard(WorkerPool::TestSchedule::kForceSteal);
    const RunResult r = run_shared(s, cfg);
    EXPECT_TRUE(ref.forest == r.forest) << "forced-steal schedule";
  }
  for (std::uint64_t seed : {1ull, 42ull, 1337ull}) {
    WorkerPool::ScheduleGuard guard(WorkerPool::TestSchedule::kShuffle, seed);
    const RunResult r = run_shared(s, cfg);
    EXPECT_TRUE(ref.forest == r.forest) << "shuffle seed " << seed;
  }
}

TEST(SharedSim, SpeedTraceIsPopulated) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 20000;
  cfg.workers = 2;
  cfg.sample_interval_s = 0.01;
  const RunResult r = run_shared(s, cfg);
  EXPECT_FALSE(r.trace.points.empty());
  EXPECT_GT(r.trace.final_rate(), 0.0);
  EXPECT_EQ(r.trace.points.back().photons, cfg.photons);
}

TEST(SharedSim, FurnacePhysicsSurvivesConcurrency) {
  // The furnace equilibrium must hold regardless of thread count: locks may
  // reorder tallies but cannot lose photons.
  const double rho = 0.5;
  const Scene s = scenes::furnace_box(rho);
  RunConfig cfg;
  cfg.photons = 30000;
  cfg.workers = 4;
  const RunResult r = run_shared(s, cfg);
  EXPECT_NEAR(r.counters.bounces_per_photon(), rho / (1.0 - rho), 0.07);
}

}  // namespace
}  // namespace photon
