#include "par/shared.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "geom/scenes.hpp"
#include "sim/simulator.hpp"

namespace photon {
namespace {

class SharedSimTest : public ::testing::TestWithParam<int> {};

TEST_P(SharedSimTest, TracesExactlyTheRequestedPhotons) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 4001;  // deliberately not divisible by the thread count
  cfg.workers = GetParam();
  const RunResult r = run_shared(s, cfg);

  EXPECT_EQ(r.counters.emitted, cfg.photons);
  EXPECT_EQ(r.forest.emitted_total(), cfg.photons);
  const std::uint64_t traced = std::accumulate(r.per_thread_traced.begin(),
                                               r.per_thread_traced.end(), std::uint64_t{0});
  EXPECT_EQ(traced, cfg.photons);
}

TEST_P(SharedSimTest, StaticSplitIsEven) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 4000;
  cfg.workers = GetParam();
  const RunResult r = run_shared(s, cfg);
  for (const std::uint64_t t : r.per_thread_traced) {
    EXPECT_NEAR(static_cast<double>(t),
                static_cast<double>(cfg.photons) / cfg.workers, 1.0);
  }
}

TEST_P(SharedSimTest, TalliesConserveRecords) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 5000;
  cfg.workers = GetParam();
  const RunResult r = run_shared(s, cfg);

  // Total records = emission tallies + reflection tallies. Splits only
  // redistribute (one photon of rounding per split at most).
  const std::uint64_t expected = r.counters.emitted + r.counters.bounces;
  EXPECT_NEAR(static_cast<double>(r.forest.total_tally_all()),
              static_cast<double>(expected), static_cast<double>(r.forest.total_nodes()));
}

TEST_P(SharedSimTest, MatchesUnionOfSerialLeapfrogRuns) {
  // Thread t uses stream (seed, t, T) and traces photons/T photons — exactly
  // what a serial run configured with rank=t, nranks=T does. Per-patch totals
  // must therefore agree with the union of those serial runs.
  const int T = GetParam();
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 3000 * static_cast<std::uint64_t>(T);
  cfg.workers = T;
  const RunResult shared = run_shared(s, cfg);

  std::vector<std::uint64_t> serial_tallies(s.patch_count(), 0);
  for (int t = 0; t < T; ++t) {
    RunConfig sc;
    sc.photons = 3000;
    sc.rank = t;
    sc.nranks = T;
    const RunResult r = run_serial(s, sc);
    const auto tallies = r.forest.patch_tallies();
    for (std::size_t p = 0; p < tallies.size(); ++p) serial_tallies[p] += tallies[p];
  }

  const auto shared_tallies = shared.forest.patch_tallies();
  for (std::size_t p = 0; p < s.patch_count(); ++p) {
    // Split rounding can shift a few photons inside a tree but patch totals
    // are conserved exactly up to split-rounding (<= nodes of that patch).
    EXPECT_NEAR(static_cast<double>(shared_tallies[p]),
                static_cast<double>(serial_tallies[p]),
                static_cast<double>(shared.forest.total_nodes()))
        << "patch " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, SharedSimTest, ::testing::Values(1, 2, 4));

TEST(SharedSim, SpeedTraceIsPopulated) {
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 20000;
  cfg.workers = 2;
  cfg.sample_interval_s = 0.01;
  const RunResult r = run_shared(s, cfg);
  EXPECT_FALSE(r.trace.points.empty());
  EXPECT_GT(r.trace.final_rate(), 0.0);
  EXPECT_EQ(r.trace.points.back().photons, cfg.photons);
}

TEST(SharedSim, FurnacePhysicsSurvivesConcurrency) {
  // The furnace equilibrium must hold regardless of thread count: locks may
  // reorder tallies but cannot lose photons.
  const double rho = 0.5;
  const Scene s = scenes::furnace_box(rho);
  RunConfig cfg;
  cfg.photons = 30000;
  cfg.workers = 4;
  const RunResult r = run_shared(s, cfg);
  EXPECT_NEAR(r.counters.bounces_per_photon(), rho / (1.0 - rho), 0.07);
}

}  // namespace
}  // namespace photon
