#include "sim/tracer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geom/scenes.hpp"

namespace photon {
namespace {

// Sink that remembers every record for inspection.
class RecordingSink final : public BinSink {
 public:
  void record(const BounceRecord& rec) override { records.push_back(rec); }
  std::vector<BounceRecord> records;
};

TEST(Tracer, EmissionIsRecordedOnLuminaire) {
  const Scene s = scenes::floor_and_light();
  const Emitter emitter(s);
  const Tracer tracer(s);
  Lcg48 rng(1);

  RecordingSink sink;
  const EmissionSample emission = emitter.emit(rng);
  tracer.trace(emission, rng, sink);
  ASSERT_FALSE(sink.records.empty());
  EXPECT_EQ(sink.records[0].patch, emission.patch);
  EXPECT_TRUE(sink.records[0].front);
}

TEST(Tracer, PhotonsReachTheFloor) {
  const Scene s = scenes::floor_and_light();
  const Emitter emitter(s);
  const Tracer tracer(s);
  Lcg48 rng(2);

  RecordingSink sink;
  TraceCounters counters;
  for (int i = 0; i < 2000; ++i) tracer.trace(emitter.emit(rng), rng, sink, &counters);

  int floor_records = 0;
  for (const BounceRecord& r : sink.records) {
    if (r.patch == 0) ++floor_records;  // patch 0 is the floor
  }
  EXPECT_GT(floor_records, 500);  // most photons land on the floor and ~70% survive
  EXPECT_EQ(counters.emitted, 2000u);
}

TEST(Tracer, CountersAreConsistent) {
  const Scene s = scenes::cornell_box();
  const Emitter emitter(s);
  const Tracer tracer(s);
  Lcg48 rng(3);

  NullSink sink;
  TraceCounters counters;
  const int n = 3000;
  for (int i = 0; i < n; ++i) tracer.trace(emitter.emit(rng), rng, sink, &counters);

  EXPECT_EQ(counters.emitted, static_cast<std::uint64_t>(n));
  // Every photon ends exactly one way.
  EXPECT_EQ(counters.absorbed + counters.escaped + counters.terminated, counters.emitted);
  // The cornell box is closed: no photon escapes.
  EXPECT_EQ(counters.escaped, 0u);
  EXPECT_GT(counters.bounces, 0u);
}

TEST(Tracer, OpenSceneLeaksPhotons) {
  const Scene s = scenes::floor_and_light();  // open above the floor
  const Emitter emitter(s);
  const Tracer tracer(s);
  Lcg48 rng(4);
  NullSink sink;
  TraceCounters counters;
  for (int i = 0; i < 1000; ++i) tracer.trace(emitter.emit(rng), rng, sink, &counters);
  EXPECT_GT(counters.escaped, 0u);
}

TEST(Tracer, BlackFloorAbsorbsEverythingItCatches) {
  Scene s;
  const int black = s.add_material(Material::black());
  const int light_mat = s.add_material(Material::emitter({1, 1, 1}));
  s.add_patch(Patch({-5, 0, -5}, {10, 0, 0}, {0, 0, 10}, black));
  const int light = s.add_patch(Patch({-0.5, 2, -0.5}, {1, 0, 0}, {0, 0, 1}, light_mat));
  s.add_luminaire(light);
  s.build();
  // The light faces -y (edges chosen so normal points down)? Verify normal
  // direction and flip expectations accordingly: cross((1,0,0),(0,0,1)) = -y.
  ASSERT_LT(s.patch(light).normal().y, 0.0);

  const Emitter emitter(s);
  const Tracer tracer(s);
  Lcg48 rng(5);
  RecordingSink sink;
  TraceCounters counters;
  for (int i = 0; i < 500; ++i) tracer.trace(emitter.emit(rng), rng, sink, &counters);
  // Only emission records: the floor never reflects.
  for (const BounceRecord& r : sink.records) EXPECT_EQ(r.patch, light);
  EXPECT_EQ(counters.bounces, 0u);
}

TEST(Tracer, MirrorReflectsSpecularly) {
  // A mirror floor under a collimated downward source: photons must come back
  // up and escape (open scene), having recorded a bounce on the mirror.
  Scene s;
  const int mirror = s.add_material(Material::mirror(Rgb::splat(0.99)));
  const int light_mat = s.add_material(Material::emitter({1, 1, 1}));
  s.add_patch(Patch({-5, 0, -5}, {0, 0, 10}, {10, 0, 0}, mirror));  // normal +y
  const int light = s.add_patch(Patch({-1, 3, -1}, {2, 0, 0}, {0, 0, 2}, light_mat));
  s.add_luminaire(light, {}, /*angular_scale=*/0.01);  // nearly straight down
  s.build();
  ASSERT_GT(s.patch(0).normal().y, 0.0);

  const Emitter emitter(s);
  const Tracer tracer(s);
  Lcg48 rng(6);
  RecordingSink sink;
  TraceCounters counters;
  for (int i = 0; i < 500; ++i) tracer.trace(emitter.emit(rng), rng, sink, &counters);

  int mirror_bounces = 0;
  for (const BounceRecord& r : sink.records) {
    if (r.patch == 0) {
      ++mirror_bounces;
      EXPECT_TRUE(r.front);
      // Collimated source: reflected direction is near the normal, so the
      // projected radius squared stays small.
      EXPECT_LT(r.coords.u, 0.01f);
    }
  }
  EXPECT_GT(mirror_bounces, 400);  // ~99% reflectivity
  // Reflected photons leave through the open top or are absorbed by the
  // back of the emitter panel directly above; none remain in flight.
  EXPECT_EQ(counters.escaped + counters.absorbed, 500u);
}

TEST(Tracer, OneSidedBackHitAbsorbs) {
  // Light below a one-sided floor (normal +y): photons hit the back side and
  // must be absorbed without a bounce record.
  Scene s;
  const int white = s.add_material(Material::lambertian(Rgb::splat(0.9)));
  const int light_mat = s.add_material(Material::emitter({1, 1, 1}));
  s.add_patch(Patch({-5, 0, -5}, {0, 0, 10}, {10, 0, 0}, white));  // normal +y
  const int light = s.add_patch(Patch({-1, -3, -1}, {0, 0, 2}, {2, 0, 0}, light_mat));
  s.add_luminaire(light, {}, 0.01);  // fires upward
  s.build();
  ASSERT_GT(s.patch(light).normal().y, 0.0);

  const Emitter emitter(s);
  const Tracer tracer(s);
  Lcg48 rng(7);
  RecordingSink sink;
  TraceCounters counters;
  for (int i = 0; i < 300; ++i) tracer.trace(emitter.emit(rng), rng, sink, &counters);
  for (const BounceRecord& r : sink.records) EXPECT_EQ(r.patch, light);
  EXPECT_EQ(counters.absorbed, 300u);
}

TEST(Tracer, TwoSidedBackHitReflectsAndBinsOnBackTree) {
  Scene s;
  Material m = Material::lambertian(Rgb::splat(0.95));
  m.two_sided = true;
  const int white = s.add_material(m);
  const int light_mat = s.add_material(Material::emitter({1, 1, 1}));
  s.add_patch(Patch({-5, 0, -5}, {0, 0, 10}, {10, 0, 0}, white));  // normal +y
  const int light = s.add_patch(Patch({-1, -3, -1}, {0, 0, 2}, {2, 0, 0}, light_mat));
  s.add_luminaire(light, {}, 0.01);
  s.build();

  const Emitter emitter(s);
  const Tracer tracer(s);
  Lcg48 rng(8);
  RecordingSink sink;
  for (int i = 0; i < 300; ++i) tracer.trace(emitter.emit(rng), rng, sink);
  int back_records = 0;
  for (const BounceRecord& r : sink.records) {
    if (r.patch == 0) {
      EXPECT_FALSE(r.front);
      ++back_records;
    }
  }
  EXPECT_GT(back_records, 200);
}

TEST(Tracer, BounceLimitTerminatesMirrorBox) {
  // Two long facing perfect mirrors trap photons; the emitter is tilted 45
  // degrees so reflected photons zig-zag down the corridor instead of coming
  // straight back into the emitter panel. The bounce limit must end the loop.
  Scene s;
  const int mirror = s.add_material(Material::mirror(Rgb::splat(1.0)));
  const int light_mat = s.add_material(Material::emitter({1, 1, 1}));
  s.add_patch(Patch({-5, 0, -400}, {0, 0, 800}, {10, 0, 0}, mirror));   // floor, +y
  s.add_patch(Patch({-5, 4, -400}, {10, 0, 0}, {0, 0, 800}, mirror));   // ceiling, -y
  // Tilted emitter: normal (0, -1, 1)/sqrt(2), firing down-forward.
  const int light = s.add_patch(Patch({-.5, 2, -.5}, {1, 0, 0}, {0, 1, 1}, light_mat));
  s.add_luminaire(light, {}, 0.001);
  s.build();
  ASSERT_LT(s.patch(light).normal().y, 0.0);
  ASSERT_GT(s.patch(light).normal().z, 0.0);

  const Emitter emitter(s);
  TraceLimits limits;
  limits.max_bounces = 16;
  const Tracer tracer(s, limits);
  Lcg48 rng(9);
  NullSink sink;
  TraceCounters counters;
  for (int i = 0; i < 100; ++i) tracer.trace(emitter.emit(rng), rng, sink, &counters);
  EXPECT_GT(counters.terminated, 50u);
}

TEST(Tracer, RecordsCarryValidBinCoords) {
  const Scene s = scenes::cornell_box();
  const Emitter emitter(s);
  const Tracer tracer(s);
  Lcg48 rng(10);
  RecordingSink sink;
  for (int i = 0; i < 500; ++i) tracer.trace(emitter.emit(rng), rng, sink);
  for (const BounceRecord& r : sink.records) {
    EXPECT_GE(r.coords.s, 0.0f);
    EXPECT_LE(r.coords.s, 1.0f);
    EXPECT_GE(r.coords.t, 0.0f);
    EXPECT_LE(r.coords.t, 1.0f);
    EXPECT_GE(r.coords.u, 0.0f);
    EXPECT_LE(r.coords.u, 1.0f);
    EXPECT_GE(r.coords.theta, 0.0f);
    EXPECT_LE(r.coords.theta, static_cast<float>(kTwoPi));
    EXPECT_LT(r.channel, 3);
  }
}

}  // namespace
}  // namespace photon
