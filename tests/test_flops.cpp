#include "core/flops.hpp"

#include <gtest/gtest.h>

namespace photon {
namespace {

TEST(Flops, ShirleyFormulaIs34) {
  // Chapter 4: "this algorithm generates 34 floating point operations".
  EXPECT_EQ(shirley_formula_flops(), 34);
}

TEST(Flops, RejectionIterationIs13) {
  // "one iteration of the loop ... takes 13 floating-point operations".
  EXPECT_EQ(rejection_iteration_flops(), 13);
}

TEST(Flops, RejectionExpectedNearPaperValue) {
  // 13 / (pi/4) = 16.55 for the loop, + 5 for z = sqrt(1 - tmp) => ~21.6,
  // which the paper rounds to 22.
  const double expected = rejection_expected_flops();
  EXPECT_NEAR(expected, 13.0 / (3.14159265358979323846 / 4.0) + 5.0, 1e-12);
  EXPECT_GT(expected, 21.0);
  EXPECT_LT(expected, 22.5);
}

TEST(Flops, RejectionBeatsFormula) {
  EXPECT_LT(rejection_expected_flops(), static_cast<double>(shirley_formula_flops()));
  // The paper quotes a saving of 12 operations (34 - 22).
  EXPECT_NEAR(shirley_formula_flops() - rejection_expected_flops(), 12.0, 0.5);
}

TEST(Flops, ConventionIsAdjustable) {
  FlopConvention cheap_trig = kLlnlConvention;
  cheap_trig.sincos = 1;  // hardware sincos
  EXPECT_EQ(shirley_formula_flops(cheap_trig), 34 - 2 * 7);
}

}  // namespace
}  // namespace photon
