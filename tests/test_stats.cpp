#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"

namespace photon {
namespace {

TEST(BinomialSigma, MatchesFormula) {
  EXPECT_DOUBLE_EQ(binomial_sigma(100, 0.5), std::sqrt(25.0));
  EXPECT_DOUBLE_EQ(binomial_sigma(0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(binomial_sigma(100, 0.0), 0.0);
}

TEST(SplitSignificance, ZeroForBalancedHalves) {
  EXPECT_DOUBLE_EQ(split_significance(100, 50), 0.0);
}

TEST(SplitSignificance, SymmetricInHalves) {
  EXPECT_DOUBLE_EQ(split_significance(100, 70), split_significance(100, 30));
}

TEST(SplitSignificance, GrowsWithImbalance) {
  EXPECT_LT(split_significance(100, 55), split_significance(100, 70));
  EXPECT_LT(split_significance(100, 70), split_significance(100, 95));
}

TEST(SplitSignificance, DegenerateAllOnOneSide) {
  // sigma = 0; raw difference returned, still strongly positive.
  EXPECT_GT(split_significance(64, 64), 3.0);
  EXPECT_GT(split_significance(64, 0), 3.0);
}

TEST(ShouldSplit, RespectsMinimumCount) {
  SplitPolicy policy;
  policy.min_count = 32;
  EXPECT_FALSE(should_split(31, 31, policy));  // extreme but too few photons
  EXPECT_TRUE(should_split(32, 32, policy));
}

TEST(ShouldSplit, UniformDataDoesNotSplit) {
  EXPECT_FALSE(should_split(1000, 500));
  EXPECT_FALSE(should_split(1000, 520));  // ~1.3 sigma
}

TEST(ShouldSplit, StepDataSplits) {
  EXPECT_TRUE(should_split(1000, 800));
  EXPECT_TRUE(should_split(100, 90));
}

TEST(ShouldSplit, ThresholdIsConfigurable) {
  SplitPolicy strict;
  strict.z = 6.0;
  // ~3.8 sigma imbalance: splits at z=3, not at z=6.
  EXPECT_TRUE(should_split(1000, 560));
  EXPECT_FALSE(should_split(1000, 560, strict));
}

TEST(ShouldSplit, FalsePositiveRateNearNominal) {
  // Chapter 3: with 3 sigma, "with probability 0.9974 we will reject
  // correctly". Simulate genuinely uniform bins and count spurious splits.
  Lcg48 rng(7777);
  const int trials = 4000;
  const std::uint64_t n = 400;
  int false_splits = 0;
  for (int t = 0; t < trials; ++t) {
    std::uint64_t left = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (rng.uniform() < 0.5) ++left;
    }
    if (should_split(n, left)) ++false_splits;
  }
  const double rate = static_cast<double>(false_splits) / trials;
  // Nominal 0.26%; the estimated-p variant is slightly conservative. Allow
  // generous head room while still catching gross errors.
  EXPECT_LT(rate, 0.02);
}

TEST(ShouldSplit, DetectsTrueGradients) {
  // A 70/30 distribution should be detected essentially always at n=400.
  Lcg48 rng(1234);
  const int trials = 500;
  const std::uint64_t n = 400;
  int detected = 0;
  for (int t = 0; t < trials; ++t) {
    std::uint64_t left = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (rng.uniform() < 0.7) ++left;
    }
    if (should_split(n, left)) ++detected;
  }
  EXPECT_GT(detected, trials * 95 / 100);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

}  // namespace
}  // namespace photon
