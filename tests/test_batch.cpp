#include "engine/batch.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace photon {
namespace {

TEST(BatchController, StartsAtInitialSize) {
  const BatchController c;
  EXPECT_EQ(c.size(), 500u);  // the paper's starting batch
}

TEST(BatchController, GrowsWhileSpeedImproves) {
  // Table 5.3's opening sequence: 500, 750, 1125, 1687.
  BatchController c;
  c.update(100.0);
  EXPECT_EQ(c.size(), 750u);
  c.update(120.0);
  EXPECT_EQ(c.size(), 1125u);
  c.update(140.0);
  EXPECT_EQ(c.size(), 1687u);
}

TEST(BatchController, BacksOffOnSlowdown) {
  BatchController c;
  c.update(100.0);
  c.update(120.0);
  c.update(140.0);  // at 1687 now
  c.update(130.0);  // slower -> shrink by 10%
  EXPECT_EQ(c.size(), 1518u);  // 1687 * 0.9, the paper's observed value
}

TEST(BatchController, FifteenPercentVariant) {
  BatchPolicy policy;
  policy.backoff = 0.85;  // the figure quoted in the paper's text
  BatchController c(policy);
  c.update(100.0);
  c.update(120.0);
  c.update(140.0);
  c.update(130.0);
  EXPECT_EQ(c.size(), static_cast<std::uint64_t>(1687 * 0.85));
}

TEST(BatchController, RegrowsAfterBackoff) {
  BatchController c;
  c.update(100.0);
  c.update(90.0);   // shrink
  const std::uint64_t small = c.size();
  c.update(110.0);  // faster again -> grow
  EXPECT_GT(c.size(), small);
}

TEST(BatchController, RespectsMinimum) {
  BatchPolicy policy;
  policy.initial = 100;
  policy.min_size = 80;
  BatchController c(policy);
  double rate = 100.0;
  for (int i = 0; i < 20; ++i) {
    rate *= 0.5;  // keeps getting slower
    c.update(rate);
  }
  EXPECT_GE(c.size(), 80u);
}

TEST(BatchController, RespectsMaximum) {
  BatchPolicy policy;
  policy.max_size = 2000;
  BatchController c(policy);
  double rate = 1.0;
  for (int i = 0; i < 30; ++i) {
    rate *= 2.0;
    c.update(rate);
  }
  EXPECT_LE(c.size(), 2000u);
}

TEST(BatchController, HistoryRecordsAllSizes) {
  BatchController c;
  c.update(10);
  c.update(20);
  c.update(15);
  const auto& h = c.history();
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 500u);
  EXPECT_EQ(h[1], 750u);
  EXPECT_EQ(h[2], 1125u);
  EXPECT_EQ(h[3], 1012u);  // 1125 * 0.9, as in the paper's SP-2 column
}

TEST(BatchController, HoversNearOptimumWithSharpPenalty) {
  // When oversized batches are punished sharply (the Ethernet congestion
  // regime of Table 5.3), grow/shrink alternation hovers in a band around
  // the optimum instead of diverging.
  BatchController c;
  auto modeled_rate = [](std::uint64_t size) {
    const double s = static_cast<double>(size);
    // Latency-dominated below ~1400, strongly congestion-punished above.
    return s / (0.5 + s / 1000.0 + s * s * s / 4e9);
  };
  for (int i = 0; i < 80; ++i) c.update(modeled_rate(c.size()));
  const auto& h = c.history();
  std::uint64_t lo = h[40], hi = h[40];
  for (std::size_t i = 40; i < h.size(); ++i) {
    lo = std::min(lo, h[i]);
    hi = std::max(hi, h[i]);
  }
  // Bounded oscillation: the late-run band stays within one decade.
  EXPECT_GT(lo, 100u);
  EXPECT_LT(hi, 30000u);
  EXPECT_LT(static_cast<double>(hi) / static_cast<double>(lo), 10.0);
}

}  // namespace
}  // namespace photon
