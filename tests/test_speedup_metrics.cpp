#include "perf/speedup.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace photon {
namespace {

std::vector<SpeedPoint> linear_trace(double rate, double duration, double step) {
  std::vector<SpeedPoint> out;
  for (double t = step; t <= duration; t += step) {
    out.push_back({t, static_cast<std::uint64_t>(rate * t), rate});
  }
  return out;
}

TEST(SpeedupMetrics, RateAtTime) {
  const auto trace = linear_trace(100.0, 10.0, 1.0);
  EXPECT_DOUBLE_EQ(rate_at_time(trace, 5.0), 100.0);
  EXPECT_DOUBLE_EQ(rate_at_time(trace, 0.5), 0.0);  // before first point
  EXPECT_DOUBLE_EQ(rate_at_time(trace, 100.0), 100.0);
}

TEST(SpeedupMetrics, PhotonsAtTime) {
  const auto trace = linear_trace(100.0, 10.0, 1.0);
  EXPECT_EQ(photons_at_time(trace, 3.5), 300u);
  EXPECT_EQ(photons_at_time(trace, 0.0), 0u);
}

TEST(SpeedupMetrics, TimeToPhotons) {
  const auto trace = linear_trace(100.0, 10.0, 1.0);
  EXPECT_DOUBLE_EQ(time_to_photons(trace, 250), 3.0);  // first point with >= 250
  EXPECT_TRUE(std::isinf(time_to_photons(trace, 10000)));
}

TEST(SpeedupMetrics, IdealScaling) {
  const auto serial = linear_trace(100.0, 100.0, 1.0);
  const auto parallel = linear_trace(400.0, 100.0, 1.0);
  EXPECT_DOUBLE_EQ(fixed_time_speedup(parallel, serial, 50.0), 4.0);
  EXPECT_NEAR(fixed_size_speedup(parallel, serial, 10000), 4.0, 0.4);
}

TEST(SpeedupMetrics, StartupPenalizesShortHorizons) {
  // Parallel run with 10s of startup before any work: early fixed-time
  // speedup is zero, late speedup approaches the rate ratio — the paper's
  // "speedup varies with time".
  std::vector<SpeedPoint> parallel;
  for (double t = 11.0; t <= 200.0; t += 1.0) {
    parallel.push_back({t, static_cast<std::uint64_t>(400.0 * (t - 10.0)), 0.0});
  }
  const auto serial = linear_trace(100.0, 200.0, 1.0);
  EXPECT_DOUBLE_EQ(fixed_time_speedup(parallel, serial, 5.0), 0.0);
  const double late = fixed_time_speedup(parallel, serial, 200.0);
  EXPECT_GT(late, 3.0);
  EXPECT_LT(late, 4.0);
  // Fixed-size on a small task also suffers from the startup. (Both tasks
  // must be completable by the serial trace, which reaches 20000 photons.)
  EXPECT_LT(fixed_size_speedup(parallel, serial, 400),
            fixed_size_speedup(parallel, serial, 15000));
}

TEST(SpeedupMetrics, IncompleteTaskGivesZero) {
  const auto serial = linear_trace(100.0, 10.0, 1.0);
  const auto parallel = linear_trace(400.0, 10.0, 1.0);
  EXPECT_DOUBLE_EQ(fixed_size_speedup(parallel, serial, 100000), 0.0);
}

TEST(SpeedupMetrics, EmptyTraces) {
  const std::vector<SpeedPoint> empty;
  const auto serial = linear_trace(100.0, 10.0, 1.0);
  EXPECT_DOUBLE_EQ(fixed_time_speedup(empty, serial, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(rate_at_time(empty, 5.0), 0.0);
}

}  // namespace
}  // namespace photon
