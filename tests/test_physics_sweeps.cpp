// Parameterized physics sweeps: the analytic validations of the simulator
// across their parameter spaces (the single-point versions live in
// test_simulator.cpp).
#include <gtest/gtest.h>

#include <cmath>

#include "core/sampling.hpp"
#include "geom/scenes.hpp"
#include "sim/simulator.hpp"

namespace photon {
namespace {

constexpr double kPi = 3.14159265358979323846;

// --- furnace equilibrium over the albedo range ---

class FurnaceSweep : public ::testing::TestWithParam<double> {};

TEST_P(FurnaceSweep, PathLengthMatchesGeometricSeries) {
  const double rho = GetParam();
  const Scene s = scenes::furnace_box(rho);
  RunConfig cfg;
  cfg.photons = 30000;
  const RunResult r = run_serial(s, cfg);
  // E[bounces] = rho / (1 - rho); tolerance grows with the tail at high rho.
  const double expected = rho / (1.0 - rho);
  EXPECT_NEAR(r.counters.bounces_per_photon(), expected, 0.05 * (1.0 + expected));
  EXPECT_EQ(r.counters.escaped, 0u);
}

TEST_P(FurnaceSweep, EquilibriumRadianceMatchesAnalytic) {
  const double rho = GetParam();
  const Scene s = scenes::furnace_box(rho);
  RunConfig cfg;
  cfg.photons = 120000;
  cfg.batch = 40000;
  const RunResult r = run_serial(s, cfg);

  const double expected = 1.0 / ((1.0 - rho) * kPi);
  Lcg48 rng(17);
  RunningStats stats;
  for (int i = 0; i < 600; ++i) {
    const int wall = static_cast<int>(rng.uniform_int(6));
    const Vec3 d = sample_hemisphere_rejection(rng);
    const BinCoords c = BinCoords::from_local_dir(rng.uniform(), rng.uniform(), d);
    double l = 0.0;
    for (int ch = 0; ch < 3; ++ch) {
      l += r.forest.radiance(wall, true, c, ch, s.patch(wall).area());
    }
    stats.add(l / 3.0);
  }
  EXPECT_NEAR(stats.mean(), expected, 0.1 * expected) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Albedos, FurnaceSweep, ::testing::Values(0.2, 0.4, 0.6, 0.8));

// --- parallel-plates form factor over the gap range ---

class PlatesSweep : public ::testing::TestWithParam<double> {};

double plates_form_factor(double gap) {
  // Howell C-11, directly opposed equal rectangles, X = Y = 1/gap.
  const double X = 1.0 / gap, Y = 1.0 / gap;
  const double x2 = 1 + X * X, y2 = 1 + Y * Y;
  return 2.0 / (kPi * X * Y) *
         (std::log(std::sqrt(x2 * y2 / (x2 + Y * Y))) +
          X * std::sqrt(y2) * std::atan(X / std::sqrt(y2)) +
          Y * std::sqrt(x2) * std::atan(Y / std::sqrt(x2)) - X * std::atan(X) -
          Y * std::atan(Y));
}

TEST_P(PlatesSweep, CaptureFractionMatchesFormFactor) {
  const double gap = GetParam();
  const Scene s = scenes::parallel_plates(gap);
  RunConfig cfg;
  cfg.photons = 150000;
  cfg.batch = 50000;
  const RunResult r = run_serial(s, cfg);

  const double f = plates_form_factor(gap);
  const double caught =
      static_cast<double>(r.counters.absorbed) / static_cast<double>(r.counters.emitted);
  EXPECT_NEAR(caught, f, 0.03 * f + 0.004) << "gap=" << gap;
}

INSTANTIATE_TEST_SUITE_P(Gaps, PlatesSweep, ::testing::Values(0.5, 1.0, 2.0));

// --- collimated emission cones over the scale range ---

class SunScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(SunScaleSweep, BeamFootprintMatchesCone) {
  // A collimated source at height h illuminates its footprint expanded by
  // h * tan(asin(scale)); essentially no photons land beyond it.
  const double scale = GetParam();
  Scene s;
  const int white = s.add_material(Material::lambertian({0.7, 0.7, 0.7}));
  const int light_mat = s.add_material(Material::emitter({10, 10, 10}));
  s.add_patch(Patch({-20, 0, -20}, {0, 0, 40}, {40, 0, 0}, white));  // huge floor
  const double h = 4.0;
  const int light = s.add_patch(Patch({-0.5, h, -0.5}, {1, 0, 0}, {0, 0, 1}, light_mat));
  s.add_luminaire(light, {}, scale);
  s.build();

  RunConfig cfg;
  cfg.photons = 30000;
  const RunResult r = run_serial(s, cfg);

  // Maximum distance from the source footprint edge a photon can land:
  const double spread = h * std::tan(std::asin(scale));
  const double max_half = 0.5 + spread + 1e-6;

  // Walk the floor tree's leaves; tallies wholly outside the footprint must
  // be (nearly) zero.
  const BinTree& tree = r.forest.tree(0, true);
  std::uint64_t outside = 0, total = 0;
  for (std::size_t i = 0; i < tree.node_count(); ++i) {
    const BinNode& n = tree.node(static_cast<int>(i));
    if (!n.is_leaf()) continue;
    total += n.total_tally();
    // Leaf's floor-coordinate box: s,t in [0,1] -> world [-20,20].
    const double lo_x = n.region.lo[1] * 40.0 - 20.0;  // t maps to x (edge_t)
    const double hi_x = n.region.hi[1] * 40.0 - 20.0;
    const double lo_z = n.region.lo[0] * 40.0 - 20.0;  // s maps to z (edge_s)
    const double hi_z = n.region.hi[0] * 40.0 - 20.0;
    const bool beyond = lo_x > max_half || hi_x < -max_half || lo_z > max_half ||
                        hi_z < -max_half;
    if (beyond) outside += n.total_tally();
  }
  ASSERT_GT(total, 10000u);
  // Direct light cannot leave the cone; only multi-bounce photons can (and
  // this scene has a single reflective surface, so re-hits are rare).
  EXPECT_LT(static_cast<double>(outside) / static_cast<double>(total), 0.002)
      << "scale=" << scale;
}

INSTANTIATE_TEST_SUITE_P(Scales, SunScaleSweep, ::testing::Values(0.005, 0.1, 0.4));

// --- russian-roulette unbiasedness at the simulator level ---

class AbsorptionSweep : public ::testing::TestWithParam<double> {};

TEST_P(AbsorptionSweep, FloorReflectionCountMatchesAlbedo) {
  const double albedo = GetParam();
  Scene s;
  const int mat = s.add_material(Material::lambertian(Rgb::splat(albedo)));
  const int light_mat = s.add_material(Material::emitter({10, 10, 10}));
  s.add_patch(Patch({-50, 0, -50}, {0, 0, 100}, {100, 0, 0}, mat));  // effectively infinite
  const int light = s.add_patch(Patch({-1, 2, -1}, {2, 0, 0}, {0, 0, 2}, light_mat));
  s.add_luminaire(light, {}, 0.2);  // narrow beam: everything hits the floor
  s.build();

  RunConfig cfg;
  cfg.photons = 40000;
  const RunResult r = run_serial(s, cfg);
  // One bounce per photon with probability `albedo` (re-hits of the floor
  // are impossible: reflected photons fly up and escape).
  EXPECT_NEAR(r.counters.bounces_per_photon(), albedo, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Albedos, AbsorptionSweep, ::testing::Values(0.25, 0.5, 0.75));

}  // namespace
}  // namespace photon
