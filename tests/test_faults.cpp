// Backend-level fault injection and recovery (engine/recovery.hpp on top of
// mp/fault.hpp): a scripted rank death must recover bitwise where the
// backend's RNG scheme guarantees it (hybrid at every shape), conserve every
// tally everywhere, and never hang — with announce_death the cascade wakes
// blocked peers without any deadline; without it the heartbeat detector
// declares the loss. CI runs this file under the `faults` ctest label,
// including the TSan job.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "engine/recovery.hpp"
#include "geom/scenes.hpp"
#include "sim/simulator.hpp"

namespace photon {
namespace {

struct FaultScene {
  const char* name;
  const Scene* scene;
  std::uint64_t photons;  // budget scaled to the scene's cost
};

const std::vector<FaultScene>& fault_scenes() {
  static const Scene cornell = scenes::cornell_box();
  static const Scene harpsichord = scenes::harpsichord_room();
  static const Scene lab = scenes::computer_lab();
  static const std::vector<FaultScene> all = {
      {"cornell", &cornell, 1200}, {"harpsichord", &harpsichord, 800}, {"lab", &lab, 400}};
  return all;
}

constexpr std::uint64_t kWindow = 200;  // batch/window size every test uses
constexpr std::uint64_t kLeg = 600;     // checkpoint leg (3 windows)

RunConfig fault_config(std::uint64_t photons) {
  RunConfig cfg;
  cfg.photons = photons;
  cfg.batch = kWindow;
  cfg.adapt_batch = false;
  cfg.groups = 2;
  cfg.workers = 2;
  cfg.checkpoint_photons = kLeg;
  return cfg;
}

// The photon-stream serial reference — what hybrid equals at EVERY shape, so
// also what a recovered hybrid run must equal at the survivor shape.
const RunResult& stream_reference(const FaultScene& cell) {
  static std::map<std::string, RunResult> cache;
  const auto it = cache.find(cell.name);
  if (it != cache.end()) return it->second;
  RunConfig cfg;
  cfg.photons = cell.photons;
  cfg.batch = kWindow;
  cfg.photon_streams = true;
  cfg.rank = 0;
  cfg.nranks = 1;
  return cache.emplace(cell.name, run_serial(*cell.scene, cfg)).first->second;
}

void expect_conserved(const RunResult& r, std::uint64_t photons, const std::string& label) {
  // Every budgeted photon emitted (dist-particle may overshoot by < P on the
  // last capped batch), every record tallied exactly once.
  EXPECT_GE(r.counters.emitted, photons) << label;
  EXPECT_EQ(r.forest.emitted_total(), r.counters.emitted) << label;
  EXPECT_EQ(r.forest.total_tally_all(), r.counters.emitted + r.counters.bounces) << label;
}

RunResult run_with_plan(const std::string& backend, const Scene& scene, RunConfig cfg,
                        std::shared_ptr<FaultPlan> plan, RecoveryStats* stats) {
  cfg.fault_plan = std::move(plan);
  const auto instance = make_backend(backend);
  EXPECT_NE(instance, nullptr) << backend;
  return run_elastic(*instance, scene, cfg, nullptr, stats);
}

TEST(ElasticRunner, NoFaultsNoLegsIsAPlainRun) {
  const FaultScene& cell = fault_scenes()[0];
  RunConfig cfg = fault_config(cell.photons);
  cfg.checkpoint_photons = 0;
  RecoveryStats stats;
  const RunResult r = run_with_plan("hybrid", *cell.scene, cfg, nullptr, &stats);
  EXPECT_EQ(stats.legs, 1);
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.final_width, 2);
  EXPECT_TRUE(r.forest == stream_reference(cell).forest);
  expect_conserved(r, cell.photons, "plain");
}

TEST(ElasticRunner, LegsAloneStayBitwise) {
  // Cutting the run into checkpoint legs (no faults) must not perturb a
  // single bit — the legs ride the backends' bitwise resume contract.
  const FaultScene& cell = fault_scenes()[0];
  RecoveryStats stats;
  const RunResult r =
      run_with_plan("hybrid", *cell.scene, fault_config(cell.photons), nullptr, &stats);
  EXPECT_EQ(stats.legs, 2);  // 1200 photons in 600-photon legs
  EXPECT_EQ(stats.failures, 0);
  EXPECT_TRUE(r.forest == stream_reference(cell).forest);
  EXPECT_EQ(r.counters.bounces, stream_reference(cell).counters.bounces);
}

TEST(ElasticRunner, HybridRankDeathRecoversBitwiseOnAllScenes) {
  // The tentpole acceptance: kill a rank mid-run on every bundled scene; the
  // recovered run must equal the undisturbed photon-stream answer bit for
  // bit at the survivor shape.
  for (const FaultScene& cell : fault_scenes()) {
    auto plan = std::make_shared<FaultPlan>();
    plan->add_kill({1, FaultPoint::kBeforeBatch, 1});
    RecoveryStats stats;
    const RunResult r =
        run_with_plan("hybrid", *cell.scene, fault_config(cell.photons), plan, &stats);
    EXPECT_EQ(stats.failures, 1) << cell.name;
    EXPECT_EQ(stats.ranks_lost, 1) << cell.name;
    EXPECT_EQ(stats.final_width, 1) << cell.name;
    ASSERT_EQ(stats.dead_ranks.size(), 1u) << cell.name;
    EXPECT_EQ(stats.dead_ranks[0], 1) << cell.name;
    EXPECT_GT(stats.photons_retraced, 0u) << cell.name;
    EXPECT_TRUE(r.forest == stream_reference(cell).forest) << cell.name;
    EXPECT_EQ(r.counters.bounces, stream_reference(cell).counters.bounces) << cell.name;
    expect_conserved(r, cell.photons, cell.name);
  }
}

TEST(ElasticRunner, DeathAfterACompletedLegRewindsToTheCheckpointOnly) {
  // Window indices are global across legs, so batch=4 dies in leg 2 — after
  // leg 1 checkpointed. Only the open leg's photons are re-traced.
  const FaultScene& cell = fault_scenes()[0];  // 1200 photons, legs of 600
  auto plan = std::make_shared<FaultPlan>();
  plan->add_kill({0, FaultPoint::kBeforeBatch, 4});
  RecoveryStats stats;
  const RunResult r =
      run_with_plan("hybrid", *cell.scene, fault_config(cell.photons), plan, &stats);
  EXPECT_EQ(stats.failures, 1);
  EXPECT_EQ(stats.photons_retraced, kLeg);  // leg 2 only, not the whole run
  EXPECT_TRUE(r.forest == stream_reference(cell).forest);
  expect_conserved(r, cell.photons, "leg2-death");
}

TEST(ElasticRunner, KillMatrixEveryPointRecoversBitwiseOrFailsLoudly) {
  // The deterministic kill-matrix fuzz: every (rank, window, injection
  // point) combination on the small scene must either finish bitwise-equal
  // and fully conserved or throw — silent tally loss is the one outcome that
  // must be impossible.
  const FaultScene& cell = fault_scenes()[0];
  const RunResult& reference = stream_reference(cell);
  for (int rank = 0; rank < 2; ++rank) {
    for (const std::uint64_t batch : {0ull, 2ull, 4ull, 5ull}) {
      for (const FaultPoint point :
           {FaultPoint::kBeforeBatch, FaultPoint::kMidExchange, FaultPoint::kAfterBatch}) {
        const std::string label = std::string("rank=") + std::to_string(rank) +
                                  " batch=" + std::to_string(batch) + " point=" +
                                  fault_point_name(point);
        auto plan = std::make_shared<FaultPlan>();
        plan->add_kill({rank, point, batch});
        RecoveryStats stats;
        const RunResult r =
            run_with_plan("hybrid", *cell.scene, fault_config(cell.photons), plan, &stats);
        EXPECT_EQ(stats.failures, 1) << label;
        EXPECT_EQ(stats.final_width, 1) << label;
        EXPECT_TRUE(r.forest == reference.forest) << label;
        EXPECT_EQ(r.counters.bounces, reference.counters.bounces) << label;
        expect_conserved(r, cell.photons, label);
      }
    }
  }
}

TEST(ElasticRunner, DistParticleRankDeathConservesTallies) {
  // dist-particle's leapfrog streams are shape-bound, so recovery at the
  // survivor shape contracts conservation, not bitwise equality.
  const FaultScene& cell = fault_scenes()[0];
  RunConfig cfg = fault_config(cell.photons);
  cfg.workers = 3;
  auto plan = std::make_shared<FaultPlan>();
  plan->add_kill({2, FaultPoint::kMidExchange, 1});
  RecoveryStats stats;
  const RunResult r = run_with_plan("dist-particle", *cell.scene, cfg, plan, &stats);
  EXPECT_EQ(stats.failures, 1);
  ASSERT_EQ(stats.dead_ranks.size(), 1u);
  EXPECT_EQ(stats.dead_ranks[0], 2);
  EXPECT_EQ(stats.final_width, 2);
  expect_conserved(r, cell.photons, "dist-particle");
}

TEST(ElasticRunner, DistSpatialRankDeathConservesTallies) {
  const FaultScene& cell = fault_scenes()[0];
  RunConfig cfg = fault_config(cell.photons);
  cfg.workers = 3;
  auto plan = std::make_shared<FaultPlan>();
  plan->add_kill({2, FaultPoint::kAfterBatch, 0});
  RecoveryStats stats;
  const RunResult r = run_with_plan("dist-spatial", *cell.scene, cfg, plan, &stats);
  EXPECT_EQ(stats.failures, 1);
  EXPECT_EQ(stats.final_width, 2);
  expect_conserved(r, cell.photons, "dist-spatial");
}

TEST(ElasticRunner, DelayIsAbsorbedByDeadlineRetriesWithoutRecovery) {
  // A slow delivery under a short per-attempt deadline: the backed-off
  // retries must ride it out — same answer, no failure, retries visible in
  // the telemetry.
  const FaultScene& cell = fault_scenes()[0];
  RunConfig cfg = fault_config(cell.photons);
  cfg.checkpoint_photons = 0;
  cfg.comm.deadline_s = 0.03;
  auto plan = std::make_shared<FaultPlan>();
  plan->add_delay({0, 1, 0, 0, 0.1});  // first 0->1 record delivery, 100ms late
  RecoveryStats stats;
  const RunResult r = run_with_plan("hybrid", *cell.scene, cfg, plan, &stats);
  EXPECT_EQ(stats.failures, 0);
  EXPECT_TRUE(r.forest == stream_reference(cell).forest);
  std::uint64_t retries = 0;
  for (const RankReport& rank : r.ranks) retries += rank.deadline_retries;
  EXPECT_GT(retries, 0u);
}

TEST(ElasticRunner, DroppedDeliveryFailsLoudlyAndRecovers) {
  // A dropped record delivery starves a receiver. Depending on who expires
  // first the detector declares a (live but blocked) rank dead or reports a
  // plain timeout — either way the world fails LOUDLY, the runner recovers,
  // and the consumed drop cannot re-fire. The final answer must be bitwise
  // regardless of which path the race took.
  const FaultScene& cell = fault_scenes()[0];
  RunConfig cfg = fault_config(cell.photons);
  cfg.comm.deadline_s = 0.02;
  cfg.comm.retries = 2;
  cfg.comm.heartbeats = true;
  auto plan = std::make_shared<FaultPlan>();
  plan->add_drop({0, 1, 0, 0});
  RecoveryStats stats;
  const RunResult r = run_with_plan("hybrid", *cell.scene, cfg, plan, &stats);
  EXPECT_GE(stats.failures, 1);
  EXPECT_TRUE(r.forest == stream_reference(cell).forest);
  expect_conserved(r, cell.photons, "drop");
}

TEST(ElasticRunner, AllRanksDeadThrowsTheWorldFailure) {
  const FaultScene& cell = fault_scenes()[0];
  auto plan = std::make_shared<FaultPlan>();
  plan->add_kill({0, FaultPoint::kBeforeBatch, 0});
  plan->add_kill({1, FaultPoint::kBeforeBatch, 0});
  RecoveryStats stats;
  EXPECT_THROW(run_with_plan("hybrid", *cell.scene, fault_config(cell.photons), plan, &stats),
               WorldFailure);
  EXPECT_EQ(stats.failures, 1);
  EXPECT_EQ(stats.ranks_lost, 2);
}

TEST(ElasticRunner, MaxRecoveriesExhaustedThrows) {
  const FaultScene& cell = fault_scenes()[0];
  RunConfig cfg = fault_config(cell.photons);
  cfg.max_recoveries = 0;
  auto plan = std::make_shared<FaultPlan>();
  plan->add_kill({1, FaultPoint::kBeforeBatch, 0});
  RecoveryStats stats;
  EXPECT_THROW(run_with_plan("hybrid", *cell.scene, cfg, plan, &stats), WorldFailure);
  EXPECT_EQ(stats.failures, 1);
}

}  // namespace
}  // namespace photon
