// Cross-module integration tests: behaviours the paper demonstrates that
// need the whole pipeline (simulate -> answer file -> view), not one module.
#include <gtest/gtest.h>

#include <cstdio>

#include "geom/scene_io.hpp"
#include "geom/scenes.hpp"
#include "sim/simulator.hpp"
#include "view/viewer.hpp"

namespace photon {
namespace {

TEST(Integration, AnswerFileWorkflow) {
  // Simulate, save the answer file, load it back, render two viewpoints —
  // the full Fig 4.10 workflow.
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 50000;
  const RunResult r = run_serial(s, cfg);

  const std::string path = ::testing::TempDir() + "/cornell.answer";
  ASSERT_TRUE(r.forest.save(path));

  BinForest loaded;
  ASSERT_TRUE(BinForest::load(path, loaded));
  EXPECT_TRUE(loaded == r.forest);

  const Camera v1({2.75, 2.75, 5.2}, {2.75, 2.75, 0}, {0, 1, 0}, 55.0, 24, 24);
  const Camera v2({4.8, 4.2, 4.8}, {1.5, 1.0, 1.5}, {0, 1, 0}, 55.0, 24, 24);
  EXPECT_GT(render(s, loaded, v1).mean_luminance(), 0.0);
  EXPECT_GT(render(s, loaded, v2).mean_luminance(), 0.0);
  std::remove(path.c_str());
}

// Shadow sharpness as a function of occluder height (Fig 4.4 / the
// harpsichord-vs-skylight discussion): with a collimated (but non-point)
// source, an occluder close to the floor casts a crisp dark shadow; a distant
// one casts a blurred shadow whose core partially fills in. Verified via the
// floor's photon density inside vs outside the geometric shadow.

// Average photon density (tallies per unit s-t area) over a spatial
// rectangle, integrating leaves by their overlap with the region.
double region_density(const BinTree& tree, float s0, float s1, float t0, float t1) {
  double total = 0.0;
  const double region_area = static_cast<double>(s1 - s0) * (t1 - t0);
  for (std::size_t i = 0; i < tree.node_count(); ++i) {
    const BinNode& n = tree.node(static_cast<int>(i));
    if (!n.is_leaf()) continue;
    const double os = std::max(0.0f, std::min(s1, n.region.hi[0]) - std::max(s0, n.region.lo[0]));
    const double ot = std::max(0.0f, std::min(t1, n.region.hi[1]) - std::max(t0, n.region.lo[1]));
    const double overlap = os * ot;
    if (overlap <= 0.0) continue;
    const double leaf_area = static_cast<double>(n.region.extent(0)) * n.region.extent(1);
    if (leaf_area > 0.0) total += static_cast<double>(n.total_tally()) / leaf_area * overlap;
  }
  return total / region_area;
}

// The occluder scene's floor spans [-4,4]^2; world (x,z) -> (s,t).
float floor_coord(double x) { return static_cast<float>((x + 4.0) / 8.0); }

double shadow_contrast(double occluder_height) {
  const Scene s = scenes::occluder_scene(occluder_height, 0.5, /*angular_scale=*/0.2);
  RunConfig cfg;
  cfg.photons = 150000;
  cfg.batch = 50000;
  const RunResult r = run_serial(s, cfg);
  const BinTree& floor_tree = r.forest.tree(0, true);
  // Average density inside the geometric shadow square vs a lit strip that
  // is inside the beam footprint but clear of the shadow.
  const double core = region_density(floor_tree, floor_coord(-0.4), floor_coord(0.4),
                                     floor_coord(-0.4), floor_coord(0.4));
  // Fully lit reference: outside the widest penumbra (<= 1.1 for height 3),
  // inside the fully illuminated radius (source half-width 3 minus the
  // collimation spread 6*0.2 ~ 1.2 => |x| < 1.8).
  const double lit = region_density(floor_tree, floor_coord(1.25), floor_coord(1.7),
                                    floor_coord(-1.0), floor_coord(1.0));
  return lit > 0.0 ? core / lit : 1.0;
}

class PenumbraTest : public ::testing::TestWithParam<double> {};

TEST_P(PenumbraTest, ShadowCoreIsDarkerThanLitFloor) {
  EXPECT_LT(shadow_contrast(GetParam()), 0.9);
}

INSTANTIATE_TEST_SUITE_P(OccluderHeights, PenumbraTest, ::testing::Values(0.3, 3.0));

TEST(Integration, NearOccluderCastsSharperShadowThanFarOccluder) {
  // Occluder resting just above the floor blocks nearly everything at the
  // core; lifted toward the wide source, the collimation spread (half-angle
  // asin(0.2)) fills the core in: blur radius ~ height * 0.2 exceeds the
  // occluder half-width 0.5 for the far case.
  const double near_contrast = shadow_contrast(0.3);
  const double far_contrast = shadow_contrast(3.0);
  EXPECT_LT(near_contrast, 0.5);
  EXPECT_LT(near_contrast, far_contrast);
}

TEST(Integration, MirrorIsViewableFromAllAngles) {
  // Chapter 4: "this mirror can be viewed from all angles correctly as the
  // radiance for all angles is stored in the bin tree for the mirror."
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 150000;
  cfg.batch = 50000;
  const RunResult r = run_serial(s, cfg);

  int mirror = -1;
  for (std::size_t i = 0; i < s.patch_count(); ++i) {
    if (s.material_of(static_cast<int>(i)).specular.max_component() > 0.5) {
      mirror = static_cast<int>(i);
    }
  }
  ASSERT_GE(mirror, 0);
  const Vec3 center = s.patch(mirror).point_at(0.5, 0.5);

  // View the mirror from several directions on its front side; each look-up
  // must return some radiance (the mirror reflects the lit room everywhere).
  int lit_views = 0;
  const Vec3 eyes[] = {{2.75, 2.75, 5.0}, {1.0, 1.0, 4.5}, {4.5, 4.0, 4.4}, {2.0, 4.5, 4.8}};
  for (const Vec3& eye : eyes) {
    const Rgb c = radiance_along(s, r.forest, Ray(eye, (center - eye).normalized()));
    if (c.sum() > 0.0) ++lit_views;
  }
  EXPECT_GE(lit_views, 3);
}

TEST(Integration, SceneFileToRenderPipeline) {
  // Save a scene to its text format, reload, simulate and render.
  const Scene original = scenes::floor_and_light();
  const std::string path = ::testing::TempDir() + "/pipeline_scene.txt";
  ASSERT_TRUE(save_scene(original, path));

  Scene loaded;
  ASSERT_TRUE(load_scene(path, loaded));
  loaded.build();

  RunConfig cfg;
  cfg.photons = 20000;
  const RunResult r = run_serial(loaded, cfg);
  const Camera cam({2, 1.2, 3.8}, {2, 0, 2}, {0, 1, 0}, 60.0, 24, 24);
  EXPECT_GT(render(loaded, r.forest, cam).mean_luminance(), 0.0);
  std::remove(path.c_str());
}

TEST(Integration, PolarizedSkylightStaysPhysical) {
  // End-to-end run on the harpsichord room (glossy wood + mirror + collimated
  // sun): energies must stay finite and counters consistent.
  const Scene s = scenes::harpsichord_room();
  RunConfig cfg;
  cfg.photons = 30000;
  const RunResult r = run_serial(s, cfg);
  EXPECT_EQ(r.counters.emitted, 30000u);
  EXPECT_EQ(r.counters.absorbed + r.counters.escaped + r.counters.terminated,
            r.counters.emitted);
  EXPECT_GT(r.forest.total_tally_all(), 30000u);  // at least the emission records
}

}  // namespace
}  // namespace photon
