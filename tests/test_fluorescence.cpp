// Tests for the fluorescence extension (the paper's chapter 6: "we foresee
// the ability to add fluorescence").
#include <gtest/gtest.h>

#include <sstream>

#include "geom/scene_io.hpp"
#include "geom/scenes.hpp"
#include "material/brdf.hpp"
#include "sim/simulator.hpp"

namespace photon {
namespace {

const Vec3 kStraightDown{0, 0, -1};

TEST(Fluorescence, DefaultMaterialsAreNotFluorescent) {
  EXPECT_FALSE(Material::lambertian({0.5, 0.5, 0.5}).fluorescent());
  EXPECT_TRUE(Material::fluorescent_paint({0.2, 0.2, 0.2}, 0.5).fluorescent());
}

TEST(Fluorescence, ShiftsBlueToGreen) {
  const Material m = Material::fluorescent_paint({0.0, 0.0, 0.0}, 0.6);
  Lcg48 rng(1);
  Polarization pol = Polarization::unpolarized();
  int fluoresced = 0, absorbed = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const ScatterSample s = sample_scatter(m, kStraightDown, /*blue*/ 2, pol, rng);
    if (s.kind == ScatterKind::kFluoresced) {
      ++fluoresced;
      EXPECT_EQ(s.channel, 1);  // green
      EXPECT_GT(s.dir.z, 0.0);  // re-radiated diffusely upward
    } else {
      ASSERT_EQ(s.kind, ScatterKind::kAbsorbed);
      ++absorbed;
    }
  }
  EXPECT_NEAR(static_cast<double>(fluoresced) / n, 0.6, 0.02);
}

TEST(Fluorescence, OtherChannelsUnaffected) {
  const Material m = Material::fluorescent_paint({0.0, 0.0, 0.0}, 0.6);
  Lcg48 rng(2);
  Polarization pol = Polarization::unpolarized();
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(sample_scatter(m, kStraightDown, /*red*/ 0, pol, rng).kind,
              ScatterKind::kAbsorbed);
    EXPECT_EQ(sample_scatter(m, kStraightDown, /*green*/ 1, pol, rng).kind,
              ScatterKind::kAbsorbed);
  }
}

TEST(Fluorescence, CombinesWithDiffuseReflection) {
  // Blue photon on a material with 0.3 diffuse + 0.5 blue->green shift:
  // P(diffuse, still blue) = 0.3, P(fluoresced to green) = 0.7 * 0.5 = 0.35.
  Material m = Material::lambertian(Rgb::splat(0.3));
  m.fluorescence[2] = {0.0, 0.5, 0.0};
  Lcg48 rng(3);
  Polarization pol = Polarization::unpolarized();
  int diffuse = 0, fluoresced = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const ScatterSample s = sample_scatter(m, kStraightDown, 2, pol, rng);
    if (s.kind == ScatterKind::kDiffuse) {
      ++diffuse;
      EXPECT_EQ(s.channel, 2);
    } else if (s.kind == ScatterKind::kFluoresced) {
      ++fluoresced;
    }
  }
  EXPECT_NEAR(static_cast<double>(diffuse) / n, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(fluoresced) / n, 0.35, 0.02);
}

TEST(Fluorescence, MultiChannelShiftRow) {
  Material m;
  m.fluorescence[2] = {0.3, 0.3, 0.0};  // blue -> red or green, evenly
  Lcg48 rng(4);
  Polarization pol = Polarization::unpolarized();
  int red = 0, green = 0, total = 0;
  for (int i = 0; i < 30000; ++i) {
    const ScatterSample s = sample_scatter(m, kStraightDown, 2, pol, rng);
    if (s.kind != ScatterKind::kFluoresced) continue;
    ++total;
    if (s.channel == 0) ++red;
    if (s.channel == 1) ++green;
  }
  EXPECT_GT(total, 15000);
  EXPECT_NEAR(static_cast<double>(red) / total, 0.5, 0.03);
  EXPECT_EQ(red + green, total);
}

TEST(Fluorescence, EndToEndChannelTransfer) {
  // A blue-only luminaire over a fluorescent floor: the floor's bins must
  // tally *green* photons even though none were emitted green.
  Scene s;
  const int paint = s.add_material(Material::fluorescent_paint({0.0, 0.0, 0.0}, 0.8));
  const int light_mat = s.add_material(Material::emitter({0.0, 0.0, 10.0}));
  s.add_patch(Patch({-4, 0, -4}, {0, 0, 8}, {8, 0, 0}, paint));
  const int light = s.add_patch(Patch({-1, 3, -1}, {2, 0, 0}, {0, 0, 2}, light_mat));
  s.add_luminaire(light);
  s.build();

  RunConfig cfg;
  cfg.photons = 20000;
  const RunResult r = run_serial(s, cfg);

  EXPECT_EQ(r.forest.emitted(0), 0u);
  EXPECT_EQ(r.forest.emitted(1), 0u);
  EXPECT_GT(r.forest.emitted(2), 0u);
  // The floor (patch 0) reflects green only.
  EXPECT_EQ(r.forest.tree(0, true).total_tally(2), 0u);
  EXPECT_GT(r.forest.tree(0, true).total_tally(1), 1000u);
}

TEST(Fluorescence, SceneIoRoundTrip) {
  Scene s;
  s.add_material(Material::fluorescent_paint({0.1, 0.2, 0.3}, 0.45));
  s.add_material(Material::lambertian({0.5, 0.5, 0.5}));
  s.add_patch(Patch({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 0));

  std::stringstream buf;
  save_scene(s, buf);
  Scene loaded;
  ASSERT_TRUE(load_scene(buf, loaded));
  ASSERT_EQ(loaded.materials().size(), 2u);
  EXPECT_TRUE(loaded.materials()[0].fluorescent());
  EXPECT_DOUBLE_EQ(loaded.materials()[0].fluorescence[2].g, 0.45);
  EXPECT_FALSE(loaded.materials()[1].fluorescent());
}

}  // namespace
}  // namespace photon
