#include "material/brdf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "material/fresnel.hpp"

namespace photon {
namespace {

const Vec3 kStraightDown{0, 0, -1};

TEST(Brdf, BlackMaterialAbsorbsEverything) {
  const Material m = Material::black();
  Lcg48 rng(1);
  Polarization pol = Polarization::unpolarized();
  for (int i = 0; i < 200; ++i) {
    const ScatterSample s = sample_scatter(m, kStraightDown, 0, pol, rng);
    EXPECT_EQ(s.kind, ScatterKind::kAbsorbed);
  }
}

TEST(Brdf, PerfectMirrorReflectsExactly) {
  Material m = Material::mirror(Rgb::splat(1.0));
  m.roughness = 0.0;
  Lcg48 rng(2);
  Polarization pol = Polarization::unpolarized();
  const Vec3 wi = Vec3{0.5, 0.2, -0.84}.normalized();
  for (int i = 0; i < 50; ++i) {
    const ScatterSample s = sample_scatter(m, wi, 1, pol, rng);
    if (s.kind == ScatterKind::kAbsorbed) continue;  // tiny Fresnel shortfall
    ASSERT_EQ(s.kind, ScatterKind::kSpecular);
    EXPECT_NEAR(s.dir.x, wi.x, 1e-12);
    EXPECT_NEAR(s.dir.y, wi.y, 1e-12);
    EXPECT_NEAR(s.dir.z, -wi.z, 1e-12);
  }
}

TEST(Brdf, DiffuseOutputsUpperHemisphere) {
  const Material m = Material::lambertian(Rgb::splat(1.0));
  Lcg48 rng(3);
  Polarization pol = Polarization::unpolarized();
  int diffuse = 0;
  for (int i = 0; i < 500; ++i) {
    const ScatterSample s = sample_scatter(m, kStraightDown, 0, pol, rng);
    ASSERT_NE(s.kind, ScatterKind::kSpecular);
    if (s.kind == ScatterKind::kDiffuse) {
      ++diffuse;
      EXPECT_GT(s.dir.z, 0.0);
      EXPECT_NEAR(s.dir.length(), 1.0, 1e-12);
    }
  }
  EXPECT_EQ(diffuse, 500);  // albedo 1: never absorbed
}

TEST(Brdf, SurvivalFrequencyMatchesAlbedo) {
  // Russian roulette must be unbiased: P(survive) == diffuse albedo.
  for (const double albedo : {0.2, 0.5, 0.73, 0.9}) {
    const Material m = Material::lambertian(Rgb::splat(albedo));
    Lcg48 rng(static_cast<std::uint64_t>(albedo * 1e6));
    Polarization pol = Polarization::unpolarized();
    const int n = 20000;
    int survived = 0;
    for (int i = 0; i < n; ++i) {
      if (sample_scatter(m, kStraightDown, 0, pol, rng).kind != ScatterKind::kAbsorbed) {
        ++survived;
      }
    }
    EXPECT_NEAR(static_cast<double>(survived) / n, albedo, 0.015) << "albedo " << albedo;
  }
}

TEST(Brdf, PerChannelAlbedo) {
  const Material m = Material::lambertian({0.9, 0.1, 0.5});
  Lcg48 rng(42);
  Polarization pol = Polarization::unpolarized();
  const int n = 20000;
  int red = 0, green = 0;
  for (int i = 0; i < n; ++i) {
    if (sample_scatter(m, kStraightDown, 0, pol, rng).kind != ScatterKind::kAbsorbed) ++red;
    if (sample_scatter(m, kStraightDown, 1, pol, rng).kind != ScatterKind::kAbsorbed) ++green;
  }
  EXPECT_NEAR(red / static_cast<double>(n), 0.9, 0.02);
  EXPECT_NEAR(green / static_cast<double>(n), 0.1, 0.02);
}

TEST(Brdf, SpecularProbabilityRisesTowardGrazing) {
  const Material m = Material::glossy(Rgb::splat(0.5), Rgb::splat(0.04), 0.1);
  const Polarization pol = Polarization::unpolarized();
  const double normal = specular_probability(m, 1.0, 0, pol);
  const double grazing = specular_probability(m, 0.05, 0, pol);
  EXPECT_NEAR(normal, 0.04, 0.01);
  EXPECT_GT(grazing, 0.5);
}

TEST(Brdf, EnergyConservation) {
  // P(specular) + P(diffuse) <= 1 for any incidence when albedos are <= 1.
  const Material m = Material::glossy(Rgb::splat(1.0), Rgb::splat(1.0), 0.2);
  const Polarization pol = Polarization::unpolarized();
  for (double c = 0.02; c <= 1.0; c += 0.02) {
    const double ps = specular_probability(m, c, 0, pol);
    const double pd = (1.0 - ps) * 1.0;
    EXPECT_LE(ps + pd, 1.0 + 1e-12) << "cos_i " << c;
  }
}

TEST(Brdf, RoughSpecularStaysAboveSurface) {
  const Material m = Material::glossy({}, Rgb::splat(1.0), 0.5);
  Lcg48 rng(7);
  Polarization pol = Polarization::unpolarized();
  const Vec3 wi = Vec3{0.8, 0.0, -0.6}.normalized();  // oblique
  for (int i = 0; i < 2000; ++i) {
    const ScatterSample s = sample_scatter(m, wi, 0, pol, rng);
    if (s.kind == ScatterKind::kSpecular) {
      EXPECT_GT(s.dir.z, 0.0);
      EXPECT_NEAR(s.dir.length(), 1.0, 1e-9);
    }
  }
}

TEST(Brdf, RoughnessBroadensTheLobe) {
  Lcg48 rng(8);
  const Vec3 wi = Vec3{0.4, 0.0, -0.9165}.normalized();
  const Vec3 mirror_dir{wi.x, wi.y, -wi.z};
  double spread_sharp = 0.0, spread_rough = 0.0;
  for (const double rough : {0.02, 0.4}) {
    const Material m = Material::glossy({}, Rgb::splat(1.0), rough);
    Polarization pol = Polarization::unpolarized();
    double acc = 0.0;
    int n = 0;
    for (int i = 0; i < 4000; ++i) {
      const ScatterSample s = sample_scatter(m, wi, 0, pol, rng);
      if (s.kind != ScatterKind::kSpecular) continue;
      acc += std::acos(std::clamp(dot(s.dir, mirror_dir), -1.0, 1.0));
      ++n;
    }
    (rough < 0.1 ? spread_sharp : spread_rough) = acc / n;
  }
  EXPECT_LT(spread_sharp, 0.03);
  EXPECT_GT(spread_rough, 5.0 * spread_sharp);
}

// --- polarization (the paper's chapter 6 extension) ---

TEST(Polarization, StartsUnpolarized) {
  const Polarization p = Polarization::unpolarized();
  EXPECT_DOUBLE_EQ(p.degree(), 0.0);
  EXPECT_DOUBLE_EQ(p.s + p.p, 1.0);
}

TEST(Polarization, BrewsterReflectionFullyPolarizes) {
  const double ior = 1.5;
  const double cos_b = std::cos(brewster_angle(ior));
  const double rs = fresnel_rs(cos_b, ior);
  const double rp = fresnel_rp(cos_b, ior);
  const Polarization after = Polarization::unpolarized().after_specular(rs, rp);
  EXPECT_NEAR(after.s, 1.0, 1e-9);
  EXPECT_NEAR(after.degree(), 1.0, 1e-9);
}

TEST(Polarization, NormalIncidencePreservesState) {
  const double rs = fresnel_rs(1.0, 1.5);
  const double rp = fresnel_rp(1.0, 1.5);
  const Polarization before{0.7, 0.3};
  const Polarization after = before.after_specular(rs, rp);
  EXPECT_NEAR(after.s, 0.7, 1e-9);
}

TEST(Polarization, EffectiveReflectanceInterpolates) {
  const Polarization p{0.25, 0.75};
  EXPECT_DOUBLE_EQ(p.effective_reflectance(0.8, 0.4), 0.25 * 0.8 + 0.75 * 0.4);
}

TEST(Polarization, DiffuseScatterDepolarizes) {
  const Material m = Material::lambertian(Rgb::splat(1.0));
  Lcg48 rng(9);
  Polarization pol{0.9, 0.1};
  while (sample_scatter(m, kStraightDown, 0, pol, rng).kind != ScatterKind::kDiffuse) {
  }
  EXPECT_DOUBLE_EQ(pol.degree(), 0.0);
}

TEST(Polarization, RepeatedObliqueBouncesIncreasePolarization) {
  // Multiple specular reflections at an oblique angle polarize the photon;
  // its survival probability drifts toward the pure-s value.
  const double ior = 1.5;
  const double cos_i = std::cos(1.0);  // 57 degrees, near Brewster
  const double rs = fresnel_rs(cos_i, ior);
  const double rp = fresnel_rp(cos_i, ior);
  Polarization pol = Polarization::unpolarized();
  double prev_degree = pol.degree();
  for (int i = 0; i < 5; ++i) {
    pol = pol.after_specular(rs, rp);
    EXPECT_GE(pol.degree(), prev_degree);
    prev_degree = pol.degree();
  }
  EXPECT_GT(pol.degree(), 0.5);
}

}  // namespace
}  // namespace photon
