#include "core/aabb.hpp"

#include <gtest/gtest.h>

namespace photon {
namespace {

TEST(Aabb, DefaultIsEmpty) {
  const Aabb b;
  EXPECT_TRUE(b.empty());
}

TEST(Aabb, ExpandByPoints) {
  Aabb b;
  b.expand(Vec3{1, 2, 3});
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.lo, Vec3(1, 2, 3));
  EXPECT_EQ(b.hi, Vec3(1, 2, 3));
  b.expand(Vec3{-1, 5, 0});
  EXPECT_EQ(b.lo, Vec3(-1, 2, 0));
  EXPECT_EQ(b.hi, Vec3(1, 5, 3));
}

TEST(Aabb, ExpandByBox) {
  Aabb a{{0, 0, 0}, {1, 1, 1}};
  a.expand(Aabb{{-1, 0.5, 0.5}, {0.5, 2, 0.7}});
  EXPECT_EQ(a.lo, Vec3(-1, 0, 0));
  EXPECT_EQ(a.hi, Vec3(1, 2, 1));
}

TEST(Aabb, CenterExtent) {
  const Aabb b{{0, 0, 0}, {2, 4, 6}};
  EXPECT_EQ(b.center(), Vec3(1, 2, 3));
  EXPECT_EQ(b.extent(), Vec3(2, 4, 6));
}

TEST(Aabb, Contains) {
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  EXPECT_TRUE(b.contains(Vec3{0.5, 0.5, 0.5}));
  EXPECT_TRUE(b.contains(Vec3{0, 0, 0}));    // boundary inclusive
  EXPECT_TRUE(b.contains(Vec3{1, 1, 1}));
  EXPECT_FALSE(b.contains(Vec3{1.0001, 0.5, 0.5}));
}

TEST(Aabb, Overlaps) {
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  EXPECT_TRUE(b.overlaps(Aabb{{0.5, 0.5, 0.5}, {2, 2, 2}}));
  EXPECT_TRUE(b.overlaps(Aabb{{1, 1, 1}, {2, 2, 2}}));  // touching counts
  EXPECT_FALSE(b.overlaps(Aabb{{1.1, 0, 0}, {2, 1, 1}}));
}

TEST(Aabb, Padded) {
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  const Aabb p = b.padded(0.1);
  EXPECT_NEAR(p.lo.x, -0.1, 1e-15);
  EXPECT_NEAR(p.hi.z, 1.1, 1e-15);
}

TEST(Aabb, RayHitThrough) {
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  double t0 = 0, t1 = 0;
  const Ray r(Vec3{-1, 0.5, 0.5}, Vec3{1, 0, 0});
  ASSERT_TRUE(b.hit(r, kNoHit, t0, t1));
  EXPECT_NEAR(t0, 1.0, 1e-12);
  EXPECT_NEAR(t1, 2.0, 1e-12);
}

TEST(Aabb, RayMiss) {
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  double t0 = 0, t1 = 0;
  EXPECT_FALSE(b.hit(Ray(Vec3{-1, 2, 0.5}, Vec3{1, 0, 0}), kNoHit, t0, t1));
  EXPECT_FALSE(b.hit(Ray(Vec3{-1, 0.5, 0.5}, Vec3{-1, 0, 0}), kNoHit, t0, t1));  // pointing away
}

TEST(Aabb, RayOriginInside) {
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  double t0 = 0, t1 = 0;
  ASSERT_TRUE(b.hit(Ray(Vec3{0.5, 0.5, 0.5}, Vec3{0, 0, 1}), kNoHit, t0, t1));
  EXPECT_EQ(t0, 0.0);  // clipped to ray start
  EXPECT_NEAR(t1, 0.5, 1e-12);
}

TEST(Aabb, RayRespectsTmax) {
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  double t0 = 0, t1 = 0;
  EXPECT_FALSE(b.hit(Ray(Vec3{-2, 0.5, 0.5}, Vec3{1, 0, 0}), 1.5, t0, t1));
  EXPECT_TRUE(b.hit(Ray(Vec3{-2, 0.5, 0.5}, Vec3{1, 0, 0}), 2.5, t0, t1));
}

TEST(Aabb, AxisParallelRayOnBoundaryPlane) {
  // Degenerate inv_dir (infinite components) must not produce NaN failures.
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  double t0 = 0, t1 = 0;
  const Ray inside(Vec3{0.5, 0.5, -1}, Vec3{0, 0, 1});
  EXPECT_TRUE(b.hit(inside, kNoHit, t0, t1));
}

TEST(Aabb, Diagonal) {
  const Aabb b{{0, 0, 0}, {1, 1, 1}};
  double t0 = 0, t1 = 0;
  const Vec3 d = Vec3{1, 1, 1}.normalized();
  ASSERT_TRUE(b.hit(Ray(Vec3{-1, -1, -1}, d), kNoHit, t0, t1));
  EXPECT_NEAR(t0, std::sqrt(3.0), 1e-9);
}

TEST(Aabb, OctantOf) {
  const Aabb b{{0, 0, 0}, {2, 2, 2}};
  EXPECT_EQ(b.octant_of(Vec3{0.5, 0.5, 0.5}), 0);
  EXPECT_EQ(b.octant_of(Vec3{1.5, 0.5, 0.5}), 1);
  EXPECT_EQ(b.octant_of(Vec3{0.5, 1.5, 0.5}), 2);
  EXPECT_EQ(b.octant_of(Vec3{0.5, 0.5, 1.5}), 4);
  EXPECT_EQ(b.octant_of(Vec3{1.5, 1.5, 1.5}), 7);
}

TEST(Aabb, OctantBoxesPartition) {
  const Aabb b{{0, 0, 0}, {2, 4, 8}};
  double volume = 0.0;
  for (int o = 0; o < 8; ++o) {
    const Aabb c = b.octant(o);
    const Vec3 e = c.extent();
    volume += e.x * e.y * e.z;
    EXPECT_TRUE(b.overlaps(c));
    // The octant index of the child's center must be the octant itself.
    EXPECT_EQ(b.octant_of(c.center()), o);
  }
  EXPECT_NEAR(volume, 2.0 * 4.0 * 8.0, 1e-12);
}

}  // namespace
}  // namespace photon
