#include "geom/patch.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace photon {
namespace {

Patch unit_floor() {
  // z = 0 plane, normal +z.
  return Patch({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, /*material=*/0);
}

TEST(Patch, NormalAndArea) {
  const Patch p = unit_floor();
  EXPECT_EQ(p.normal(), Vec3(0, 0, 1));
  EXPECT_DOUBLE_EQ(p.area(), 1.0);

  const Patch big({0, 0, 0}, {3, 0, 0}, {0, 4, 0}, 0);
  EXPECT_DOUBLE_EQ(big.area(), 12.0);
}

TEST(Patch, FromCorners) {
  const Patch p = Patch::from_corners({1, 1, 0}, {2, 1, 0}, {1, 3, 0}, 5);
  EXPECT_EQ(p.origin(), Vec3(1, 1, 0));
  EXPECT_EQ(p.edge_s(), Vec3(1, 0, 0));
  EXPECT_EQ(p.edge_t(), Vec3(0, 2, 0));
  EXPECT_EQ(p.material_id(), 5);
}

TEST(Patch, PointAt) {
  const Patch p = unit_floor();
  EXPECT_EQ(p.point_at(0.5, 0.5), Vec3(0.5, 0.5, 0));
  EXPECT_EQ(p.point_at(1, 0), Vec3(1, 0, 0));
}

TEST(Patch, BilinearRoundTrip) {
  // Skewed (non-rectangular) parallelogram exercises the Gram inverse.
  const Patch p({1, 2, 3}, {2, 0.5, 0}, {0.3, 3, 0}, 0);
  Lcg48 rng(5);
  for (int i = 0; i < 200; ++i) {
    const double s = rng.uniform(), t = rng.uniform();
    double s2 = 0, t2 = 0;
    p.to_bilinear(p.point_at(s, t), s2, t2);
    EXPECT_NEAR(s2, s, 1e-12);
    EXPECT_NEAR(t2, t, 1e-12);
  }
}

TEST(Patch, Bounds) {
  const Patch p({0, 0, 0}, {1, 0, 0}, {0, 1, 1}, 0);
  const Aabb b = p.bounds();
  EXPECT_EQ(b.lo, Vec3(0, 0, 0));
  EXPECT_EQ(b.hi, Vec3(1, 1, 1));
}

TEST(Patch, IntersectCenterHit) {
  const Patch p = unit_floor();
  const auto hit = p.intersect(Ray({0.5, 0.5, 1.0}, {0, 0, -1}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->dist, 1.0, 1e-12);
  EXPECT_NEAR(hit->s, 0.5, 1e-12);
  EXPECT_NEAR(hit->t, 0.5, 1e-12);
  EXPECT_TRUE(hit->front);  // approached from the +z side
}

TEST(Patch, IntersectBackSide) {
  const Patch p = unit_floor();
  const auto hit = p.intersect(Ray({0.5, 0.5, -1.0}, {0, 0, 1}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->front);
}

TEST(Patch, MissOutsideBounds) {
  const Patch p = unit_floor();
  EXPECT_FALSE(p.intersect(Ray({1.5, 0.5, 1.0}, {0, 0, -1})).has_value());
  EXPECT_FALSE(p.intersect(Ray({-0.1, 0.5, 1.0}, {0, 0, -1})).has_value());
}

TEST(Patch, EdgeAndCornerHitsCount) {
  const Patch p = unit_floor();
  EXPECT_TRUE(p.intersect(Ray({0.0, 0.5, 1.0}, {0, 0, -1})).has_value());
  EXPECT_TRUE(p.intersect(Ray({1.0, 1.0, 1.0}, {0, 0, -1})).has_value());
}

TEST(Patch, MissParallelRay) {
  const Patch p = unit_floor();
  EXPECT_FALSE(p.intersect(Ray({0.5, 0.5, 1.0}, {1, 0, 0})).has_value());
}

TEST(Patch, MissBehindOrigin) {
  const Patch p = unit_floor();
  EXPECT_FALSE(p.intersect(Ray({0.5, 0.5, 1.0}, {0, 0, 1})).has_value());
}

TEST(Patch, RespectsTmax) {
  const Patch p = unit_floor();
  EXPECT_FALSE(p.intersect(Ray({0.5, 0.5, 2.0}, {0, 0, -1}), 1.5).has_value());
  EXPECT_TRUE(p.intersect(Ray({0.5, 0.5, 2.0}, {0, 0, -1}), 2.5).has_value());
}

TEST(Patch, EpsilonRejectsSelfHit) {
  const Patch p = unit_floor();
  // Origin exactly on the plane: no hit at t ~ 0.
  EXPECT_FALSE(p.intersect(Ray({0.5, 0.5, 0.0}, {0, 0, -1})).has_value());
}

TEST(Patch, ObliqueHitCoordinates) {
  const Patch p = unit_floor();
  const Vec3 dir = Vec3{1, 0, -1}.normalized();
  const auto hit = p.intersect(Ray({0.0, 0.5, 0.5}, dir));
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->s, 0.5, 1e-12);
  EXPECT_NEAR(hit->t, 0.5, 1e-12);
  EXPECT_NEAR(hit->dist, std::sqrt(0.5), 1e-12);
}

TEST(Patch, FrameMatchesNormal) {
  const Patch p({0, 0, 0}, {0, 2, 0}, {0, 0, 3}, 0);  // normal +x
  EXPECT_NEAR(p.normal().x, 1.0, 1e-12);
  const Onb f = p.frame();
  EXPECT_NEAR(f.w.x, 1.0, 1e-12);
}

TEST(Patch, RandomRaysHitWhereExpected) {
  const Patch p({0, 0, 0}, {2, 0, 0}, {0, 2, 0}, 0);
  Lcg48 rng(77);
  for (int i = 0; i < 300; ++i) {
    const double s = rng.uniform(), t = rng.uniform();
    const Vec3 target = p.point_at(s, t);
    const Vec3 origin{rng.uniform() * 4 - 1, rng.uniform() * 4 - 1, 1.0 + rng.uniform()};
    const Vec3 dir = (target - origin).normalized();
    if (std::abs(dir.z) < 1e-3) continue;
    const auto hit = p.intersect(Ray(origin, dir));
    ASSERT_TRUE(hit.has_value()) << "i=" << i;
    EXPECT_NEAR(hit->s, s, 1e-9);
    EXPECT_NEAR(hit->t, t, 1e-9);
  }
}

}  // namespace
}  // namespace photon
