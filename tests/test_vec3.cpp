#include "core/vec3.hpp"

#include <gtest/gtest.h>

#include "core/onb.hpp"

namespace photon {
namespace {

TEST(Vec3, DefaultIsZero) {
  const Vec3 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(a / 2.0, Vec3(0.5, 1.0, 1.5));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1, 1, 1};
  v += Vec3{1, 2, 3};
  EXPECT_EQ(v, Vec3(2, 3, 4));
  v -= Vec3{1, 1, 1};
  EXPECT_EQ(v, Vec3(1, 2, 3));
  v *= 3.0;
  EXPECT_EQ(v, Vec3(3, 6, 9));
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_EQ(dot(x, y), 0.0);
  EXPECT_EQ(dot(x, x), 1.0);
  EXPECT_EQ(cross(x, y), z);
  EXPECT_EQ(cross(y, z), x);
  EXPECT_EQ(cross(z, x), y);
  EXPECT_EQ(cross(y, x), -z);
}

TEST(Vec3, CrossIsPerpendicular) {
  const Vec3 a{1.3, -2.7, 0.4}, b{0.2, 5.5, -1.1};
  const Vec3 c = cross(a, b);
  EXPECT_NEAR(dot(c, a), 0.0, 1e-12);
  EXPECT_NEAR(dot(c, b), 0.0, 1e-12);
}

TEST(Vec3, LengthAndNormalize) {
  const Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.length(), 5.0);
  EXPECT_DOUBLE_EQ(v.length_squared(), 25.0);
  const Vec3 n = v.normalized();
  EXPECT_NEAR(n.length(), 1.0, 1e-15);
  EXPECT_NEAR(n.x, 0.6, 1e-15);
}

TEST(Vec3, NormalizeZeroVectorIsSafe) {
  EXPECT_EQ(Vec3{}.normalized(), Vec3{});
}

TEST(Vec3, Reflect) {
  // Incoming straight down onto z-up surface bounces straight up.
  EXPECT_EQ(reflect(Vec3(0, 0, -1), Vec3(0, 0, 1)), Vec3(0, 0, 1));
  // 45-degree reflection.
  const Vec3 d = Vec3{1, 0, -1}.normalized();
  const Vec3 r = reflect(d, Vec3{0, 0, 1});
  EXPECT_NEAR(r.x, d.x, 1e-15);
  EXPECT_NEAR(r.z, -d.z, 1e-15);
}

TEST(Vec3, ReflectPreservesLength) {
  const Vec3 d = Vec3{0.3, -0.8, -0.5}.normalized();
  const Vec3 n = Vec3{0.1, 0.2, 0.9}.normalized();
  EXPECT_NEAR(reflect(d, n).length(), 1.0, 1e-12);
}

TEST(Vec3, MinMax) {
  const Vec3 a{1, 5, 3}, b{2, 4, 3};
  EXPECT_EQ(min(a, b), Vec3(1, 4, 3));
  EXPECT_EQ(max(a, b), Vec3(2, 5, 3));
}

TEST(Vec3, IndexOperator) {
  const Vec3 v{7, 8, 9};
  EXPECT_EQ(v[0], 7.0);
  EXPECT_EQ(v[1], 8.0);
  EXPECT_EQ(v[2], 9.0);
}

TEST(Vec3, Distance) {
  EXPECT_DOUBLE_EQ(distance(Vec3(0, 0, 0), Vec3(3, 4, 0)), 5.0);
}

TEST(Onb, BasisIsOrthonormal) {
  const Vec3 normals[] = {
      {0, 0, 1}, {0, 0, -1}, {1, 0, 0}, {0, 1, 0},
      Vec3{1, 1, 1}.normalized(), Vec3{-0.3, 0.7, -0.2}.normalized()};
  for (const Vec3& n : normals) {
    const Onb b = Onb::from_normal(n);
    EXPECT_NEAR(b.u.length(), 1.0, 1e-12);
    EXPECT_NEAR(b.v.length(), 1.0, 1e-12);
    EXPECT_NEAR(b.w.length(), 1.0, 1e-12);
    EXPECT_NEAR(dot(b.u, b.v), 0.0, 1e-12);
    EXPECT_NEAR(dot(b.u, b.w), 0.0, 1e-12);
    EXPECT_NEAR(dot(b.v, b.w), 0.0, 1e-12);
    // Right-handed: u x v == w.
    const Vec3 c = cross(b.u, b.v);
    EXPECT_NEAR(c.x, b.w.x, 1e-12);
    EXPECT_NEAR(c.y, b.w.y, 1e-12);
    EXPECT_NEAR(c.z, b.w.z, 1e-12);
  }
}

TEST(Onb, RoundTrip) {
  const Onb b = Onb::from_normal(Vec3{0.2, -0.5, 0.84}.normalized());
  const Vec3 local{0.3, -0.4, 0.866};
  const Vec3 back = b.to_local(b.to_world(local));
  EXPECT_NEAR(back.x, local.x, 1e-12);
  EXPECT_NEAR(back.y, local.y, 1e-12);
  EXPECT_NEAR(back.z, local.z, 1e-12);
}

TEST(Onb, NormalMapsToLocalZ) {
  const Vec3 n = Vec3{-0.6, 0.3, 0.74}.normalized();
  const Onb b = Onb::from_normal(n);
  const Vec3 local = b.to_local(n);
  EXPECT_NEAR(local.x, 0.0, 1e-12);
  EXPECT_NEAR(local.y, 0.0, 1e-12);
  EXPECT_NEAR(local.z, 1.0, 1e-12);
}

}  // namespace
}  // namespace photon
