#include "hist/binforest.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "core/rng.hpp"
#include "core/sampling.hpp"

namespace photon {
namespace {

BinCoords coords(double s, double t, double u, double theta) {
  BinCoords c;
  c.s = static_cast<float>(s);
  c.t = static_cast<float>(t);
  c.u = static_cast<float>(u);
  c.theta = static_cast<float>(theta);
  return c;
}

TEST(BinForest, TwoTreesPerPatch) {
  const BinForest f(10);
  EXPECT_EQ(f.patch_count(), 10u);
  EXPECT_EQ(f.tree_count(), 20u);
}

TEST(BinForest, TreeIndexMapsSides) {
  EXPECT_EQ(BinForest::tree_index(0, true), 0);
  EXPECT_EQ(BinForest::tree_index(0, false), 1);
  EXPECT_EQ(BinForest::tree_index(3, true), 6);
}

TEST(BinForest, RecordRoutesToCorrectTree) {
  BinForest f(4);
  f.record(2, true, coords(0.5, 0.5, 0.5, 1), 0);
  f.record(2, false, coords(0.5, 0.5, 0.5, 1), 1);
  EXPECT_EQ(f.tree(2, true).total_tally(0), 1u);
  EXPECT_EQ(f.tree(2, false).total_tally(1), 1u);
  EXPECT_EQ(f.tree(1, true).total_tally(0), 0u);
}

TEST(BinForest, EmittedBookkeeping) {
  BinForest f(1);
  f.add_emitted(0, 10);
  f.add_emitted(1);
  EXPECT_EQ(f.emitted(0), 10u);
  EXPECT_EQ(f.emitted(1), 1u);
  EXPECT_EQ(f.emitted_total(), 11u);
}

TEST(BinForest, PatchTalliesSumSidesAndChannels) {
  BinForest f(3);
  f.record(1, true, coords(0.1, 0.1, 0.1, 0.1), 0);
  f.record(1, false, coords(0.1, 0.1, 0.1, 0.1), 2);
  f.record(2, true, coords(0.1, 0.1, 0.1, 0.1), 1);
  const auto tallies = f.patch_tallies();
  EXPECT_EQ(tallies[0], 0u);
  EXPECT_EQ(tallies[1], 2u);
  EXPECT_EQ(tallies[2], 1u);
}

TEST(BinForest, RadianceOfUniformLambertianPatch) {
  // Record N cosine-distributed photons uniformly over a patch; the radiance
  // estimate anywhere must equal the analytic exitant radiance
  //   L = Phi / (A * pi)   (Lambertian: B = Phi/A, L = B/pi).
  BinForest f(1);
  const double phi = 12.0;   // total flux, channel 0
  const double area = 2.0;
  f.set_total_power({phi, 0, 0});
  Lcg48 rng(77);
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const Vec3 d = sample_hemisphere_rejection(rng);
    f.record(0, true, BinCoords::from_local_dir(rng.uniform(), rng.uniform(), d), 0);
  }
  f.add_emitted(0, n);

  const double expected = phi / (area * 3.14159265358979323846);
  RunningStats stats;
  for (int i = 0; i < 300; ++i) {
    const Vec3 d = sample_hemisphere_rejection(rng);
    const BinCoords c = BinCoords::from_local_dir(rng.uniform(), rng.uniform(), d);
    stats.add(f.radiance(0, true, c, 0, area));
  }
  EXPECT_NEAR(stats.mean(), expected, 0.12 * expected);
}

TEST(BinForest, RadianceZeroWithoutEmission) {
  BinForest f(1);
  f.set_total_power({1, 1, 1});
  EXPECT_EQ(f.radiance(0, true, coords(0.5, 0.5, 0.5, 1), 0, 1.0), 0.0);
}

TEST(BinForest, RadianceScalesWithPower) {
  BinForest f1(1), f2(1);
  f1.set_total_power({1, 0, 0});
  f2.set_total_power({3, 0, 0});
  Lcg48 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const Vec3 d = sample_hemisphere_rejection(rng);
    const BinCoords c = BinCoords::from_local_dir(rng.uniform(), rng.uniform(), d);
    f1.record(0, true, c, 0);
    f2.record(0, true, c, 0);
  }
  f1.add_emitted(0, 1000);
  f2.add_emitted(0, 1000);
  const BinCoords q = coords(0.5, 0.5, 0.3, 1.0);
  EXPECT_NEAR(f2.radiance(0, true, q, 0, 1.0), 3.0 * f1.radiance(0, true, q, 0, 1.0), 1e-9);
}

TEST(BinForest, MemoryAccounting) {
  BinForest f(5);
  const std::uint64_t empty = f.memory_bytes();
  Lcg48 rng(6);
  for (int i = 0; i < 5000; ++i) {
    f.record(0, true,
             coords(rng.uniform() * 0.2, rng.uniform(), rng.uniform(), rng.uniform() * kTwoPi),
             0);
  }
  EXPECT_GT(f.memory_bytes(), empty);
  EXPECT_GE(f.total_nodes(), f.tree_count());
  EXPECT_GE(f.total_leaves(), f.tree_count());
}

TEST(BinForest, SaveLoadRoundTrip) {
  BinForest f(3);
  f.set_total_power({1, 2, 3});
  Lcg48 rng(7);
  for (int i = 0; i < 2000; ++i) {
    f.record(static_cast<int>(rng.uniform_int(3)), rng.uniform() < 0.5,
             coords(rng.uniform() * 0.3, rng.uniform(), rng.uniform(), rng.uniform() * kTwoPi),
             static_cast<int>(rng.uniform_int(3)));
  }
  f.add_emitted(0, 900);
  f.add_emitted(1, 600);
  f.add_emitted(2, 500);

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  f.save(buf);
  const BinForest loaded = BinForest::load(buf);
  EXPECT_TRUE(f == loaded);
  EXPECT_EQ(loaded.emitted(1), 600u);
  EXPECT_EQ(loaded.total_power().b, 3.0);
}

TEST(BinForest, FileRoundTrip) {
  BinForest f(2);
  f.record(0, true, coords(0.5, 0.5, 0.5, 1), 0);
  f.add_emitted(0, 1);
  const std::string path = ::testing::TempDir() + "/forest.answer";
  ASSERT_TRUE(f.save(path));
  BinForest loaded;
  ASSERT_TRUE(BinForest::load(path, loaded));
  EXPECT_TRUE(f == loaded);
  std::remove(path.c_str());
}

TEST(BinForest, LoadRejectsGarbage) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  buf << "this is not an answer file";
  const BinForest loaded = BinForest::load(buf);
  EXPECT_EQ(loaded.tree_count(), 0u);
}

TEST(BinForest, ReplaceTree) {
  BinForest f(2);
  BinTree replacement;
  replacement.record(coords(0.5, 0.5, 0.5, 1), 2);
  f.replace_tree(BinForest::tree_index(1, true), std::move(replacement));
  EXPECT_EQ(f.tree(1, true).total_tally(2), 1u);
}

// Populates `f` with `n` random records drawn from `rng` and matching
// emission counts.
void populate(BinForest& f, Lcg48& rng, int n) {
  for (int i = 0; i < n; ++i) {
    const int channel = static_cast<int>(rng.uniform_int(3));
    f.record(static_cast<int>(rng.uniform_int(f.patch_count())), rng.uniform() < 0.5,
             coords(rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform() * kTwoPi),
             channel);
    f.add_emitted(channel);
  }
}

TEST(BinForestMerge, ConservesEveryTallyAndEmission) {
  // The distributed-resume primitive: folding B into A must conserve every
  // channel's total tally and emission count exactly — no photon gained or
  // lost, whatever the two tree structures look like.
  Lcg48 rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    BinForest a(5), b(5);
    populate(a, rng, 4000);
    populate(b, rng, 2500);

    std::array<std::uint64_t, 3> expect_tally{}, expect_emitted{};
    for (int c = 0; c < 3; ++c) {
      expect_tally[static_cast<std::size_t>(c)] = a.total_tally(c) + b.total_tally(c);
      expect_emitted[static_cast<std::size_t>(c)] = a.emitted(c) + b.emitted(c);
    }
    a.merge(b);
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(a.total_tally(c), expect_tally[static_cast<std::size_t>(c)])
          << "trial " << trial << " channel " << c;
      EXPECT_EQ(a.emitted(c), expect_emitted[static_cast<std::size_t>(c)])
          << "trial " << trial << " channel " << c;
    }
  }
}

TEST(BinForestMerge, IntoVirginForestIsLossless) {
  // Folding a checkpoint into a fresh partitioned forest must preserve the
  // refined structure exactly, not collapse it to root bins.
  Lcg48 rng(3);
  BinForest checkpoint(4);
  populate(checkpoint, rng, 6000);
  checkpoint.set_total_power({2, 2, 2});

  BinForest fresh(4);
  fresh.merge(checkpoint);
  EXPECT_TRUE(fresh == checkpoint);
  EXPECT_EQ(fresh.total_power().r, 2.0);
}

TEST(BinForestMerge, MergedTreeKeepsRefining) {
  // After a merge the speculative split counters carry the combined evidence:
  // recording into the merged tree must still be able to split leaves.
  Lcg48 rng(11);
  BinForest a(1), b(1);
  populate(a, rng, 500);
  populate(b, rng, 500);
  a.merge(b);
  const std::uint64_t nodes_before = a.total_nodes();
  populate(a, rng, 4000);
  EXPECT_GT(a.total_nodes(), nodes_before);
}

TEST(BinForestMerge, RejectsMismatchedForests) {
  BinForest a(2), b(3);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(BinForest, FramedTreeRoundTrip) {
  // The gather path's binary framing: selected trees travel as
  // [idx][BinTree bytes] frames and land via replace_framed_trees.
  Lcg48 rng(42);
  BinForest src(4);
  populate(src, rng, 5000);

  Bytes buf;
  src.append_framed_tree(buf, 2);
  src.append_framed_tree(buf, 5);
  src.append_framed_tree(buf, 7);

  BinForest dst(4);
  dst.replace_framed_trees(buf);
  EXPECT_TRUE(dst.tree_at(2) == src.tree_at(2));
  EXPECT_TRUE(dst.tree_at(5) == src.tree_at(5));
  EXPECT_TRUE(dst.tree_at(7) == src.tree_at(7));
  EXPECT_EQ(dst.tree_at(0).total_tally(0) + dst.tree_at(0).total_tally(1) +
                dst.tree_at(0).total_tally(2),
            0u);
}

TEST(BinForest, FramedTreeRejectsCorruptBuffers) {
  BinForest f(2);
  Bytes buf;
  f.append_framed_tree(buf, 1);
  Bytes truncated(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(buf.size() - 7));
  EXPECT_THROW(f.replace_framed_trees(truncated), std::runtime_error);

  Bytes bad_index = buf;
  const std::int32_t idx = 99;
  std::memcpy(bad_index.data(), &idx, sizeof(idx));
  EXPECT_THROW(f.replace_framed_trees(bad_index), std::runtime_error);
}

}  // namespace
}  // namespace photon
