#include "hist/binforest.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/rng.hpp"
#include "core/sampling.hpp"

namespace photon {
namespace {

BinCoords coords(double s, double t, double u, double theta) {
  BinCoords c;
  c.s = static_cast<float>(s);
  c.t = static_cast<float>(t);
  c.u = static_cast<float>(u);
  c.theta = static_cast<float>(theta);
  return c;
}

TEST(BinForest, TwoTreesPerPatch) {
  const BinForest f(10);
  EXPECT_EQ(f.patch_count(), 10u);
  EXPECT_EQ(f.tree_count(), 20u);
}

TEST(BinForest, TreeIndexMapsSides) {
  EXPECT_EQ(BinForest::tree_index(0, true), 0);
  EXPECT_EQ(BinForest::tree_index(0, false), 1);
  EXPECT_EQ(BinForest::tree_index(3, true), 6);
}

TEST(BinForest, RecordRoutesToCorrectTree) {
  BinForest f(4);
  f.record(2, true, coords(0.5, 0.5, 0.5, 1), 0);
  f.record(2, false, coords(0.5, 0.5, 0.5, 1), 1);
  EXPECT_EQ(f.tree(2, true).total_tally(0), 1u);
  EXPECT_EQ(f.tree(2, false).total_tally(1), 1u);
  EXPECT_EQ(f.tree(1, true).total_tally(0), 0u);
}

TEST(BinForest, EmittedBookkeeping) {
  BinForest f(1);
  f.add_emitted(0, 10);
  f.add_emitted(1);
  EXPECT_EQ(f.emitted(0), 10u);
  EXPECT_EQ(f.emitted(1), 1u);
  EXPECT_EQ(f.emitted_total(), 11u);
}

TEST(BinForest, PatchTalliesSumSidesAndChannels) {
  BinForest f(3);
  f.record(1, true, coords(0.1, 0.1, 0.1, 0.1), 0);
  f.record(1, false, coords(0.1, 0.1, 0.1, 0.1), 2);
  f.record(2, true, coords(0.1, 0.1, 0.1, 0.1), 1);
  const auto tallies = f.patch_tallies();
  EXPECT_EQ(tallies[0], 0u);
  EXPECT_EQ(tallies[1], 2u);
  EXPECT_EQ(tallies[2], 1u);
}

TEST(BinForest, RadianceOfUniformLambertianPatch) {
  // Record N cosine-distributed photons uniformly over a patch; the radiance
  // estimate anywhere must equal the analytic exitant radiance
  //   L = Phi / (A * pi)   (Lambertian: B = Phi/A, L = B/pi).
  BinForest f(1);
  const double phi = 12.0;   // total flux, channel 0
  const double area = 2.0;
  f.set_total_power({phi, 0, 0});
  Lcg48 rng(77);
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const Vec3 d = sample_hemisphere_rejection(rng);
    f.record(0, true, BinCoords::from_local_dir(rng.uniform(), rng.uniform(), d), 0);
  }
  f.add_emitted(0, n);

  const double expected = phi / (area * 3.14159265358979323846);
  RunningStats stats;
  for (int i = 0; i < 300; ++i) {
    const Vec3 d = sample_hemisphere_rejection(rng);
    const BinCoords c = BinCoords::from_local_dir(rng.uniform(), rng.uniform(), d);
    stats.add(f.radiance(0, true, c, 0, area));
  }
  EXPECT_NEAR(stats.mean(), expected, 0.12 * expected);
}

TEST(BinForest, RadianceZeroWithoutEmission) {
  BinForest f(1);
  f.set_total_power({1, 1, 1});
  EXPECT_EQ(f.radiance(0, true, coords(0.5, 0.5, 0.5, 1), 0, 1.0), 0.0);
}

TEST(BinForest, RadianceScalesWithPower) {
  BinForest f1(1), f2(1);
  f1.set_total_power({1, 0, 0});
  f2.set_total_power({3, 0, 0});
  Lcg48 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const Vec3 d = sample_hemisphere_rejection(rng);
    const BinCoords c = BinCoords::from_local_dir(rng.uniform(), rng.uniform(), d);
    f1.record(0, true, c, 0);
    f2.record(0, true, c, 0);
  }
  f1.add_emitted(0, 1000);
  f2.add_emitted(0, 1000);
  const BinCoords q = coords(0.5, 0.5, 0.3, 1.0);
  EXPECT_NEAR(f2.radiance(0, true, q, 0, 1.0), 3.0 * f1.radiance(0, true, q, 0, 1.0), 1e-9);
}

TEST(BinForest, MemoryAccounting) {
  BinForest f(5);
  const std::uint64_t empty = f.memory_bytes();
  Lcg48 rng(6);
  for (int i = 0; i < 5000; ++i) {
    f.record(0, true,
             coords(rng.uniform() * 0.2, rng.uniform(), rng.uniform(), rng.uniform() * kTwoPi),
             0);
  }
  EXPECT_GT(f.memory_bytes(), empty);
  EXPECT_GE(f.total_nodes(), f.tree_count());
  EXPECT_GE(f.total_leaves(), f.tree_count());
}

TEST(BinForest, SaveLoadRoundTrip) {
  BinForest f(3);
  f.set_total_power({1, 2, 3});
  Lcg48 rng(7);
  for (int i = 0; i < 2000; ++i) {
    f.record(static_cast<int>(rng.uniform_int(3)), rng.uniform() < 0.5,
             coords(rng.uniform() * 0.3, rng.uniform(), rng.uniform(), rng.uniform() * kTwoPi),
             static_cast<int>(rng.uniform_int(3)));
  }
  f.add_emitted(0, 900);
  f.add_emitted(1, 600);
  f.add_emitted(2, 500);

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  f.save(buf);
  const BinForest loaded = BinForest::load(buf);
  EXPECT_TRUE(f == loaded);
  EXPECT_EQ(loaded.emitted(1), 600u);
  EXPECT_EQ(loaded.total_power().b, 3.0);
}

TEST(BinForest, FileRoundTrip) {
  BinForest f(2);
  f.record(0, true, coords(0.5, 0.5, 0.5, 1), 0);
  f.add_emitted(0, 1);
  const std::string path = ::testing::TempDir() + "/forest.answer";
  ASSERT_TRUE(f.save(path));
  BinForest loaded;
  ASSERT_TRUE(BinForest::load(path, loaded));
  EXPECT_TRUE(f == loaded);
  std::remove(path.c_str());
}

TEST(BinForest, LoadRejectsGarbage) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  buf << "this is not an answer file";
  const BinForest loaded = BinForest::load(buf);
  EXPECT_EQ(loaded.tree_count(), 0u);
}

TEST(BinForest, ReplaceTree) {
  BinForest f(2);
  BinTree replacement;
  replacement.record(coords(0.5, 0.5, 0.5, 1), 2);
  f.replace_tree(BinForest::tree_index(1, true), std::move(replacement));
  EXPECT_EQ(f.tree(1, true).total_tally(2), 1u);
}

}  // namespace
}  // namespace photon
