#include "core/sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace photon {
namespace {

using Sampler = Vec3 (*)(Lcg48&, double);

// Both kernels must produce the same cosine-weighted distribution; all the
// distribution properties below are parameterized over (kernel, scale).
struct SamplerCase {
  const char* name;
  Sampler fn;
  double scale;
};

class HemisphereSamplerTest : public ::testing::TestWithParam<SamplerCase> {};

TEST_P(HemisphereSamplerTest, UnitLengthUpperHemisphere) {
  Lcg48 rng(11);
  const auto& param = GetParam();
  for (int i = 0; i < 5000; ++i) {
    const Vec3 d = param.fn(rng, param.scale);
    EXPECT_NEAR(d.length(), 1.0, 1e-12);
    EXPECT_GT(d.z, 0.0);
  }
}

TEST_P(HemisphereSamplerTest, RadiusBoundedByScale) {
  Lcg48 rng(22);
  const auto& param = GetParam();
  for (int i = 0; i < 5000; ++i) {
    const Vec3 d = param.fn(rng, param.scale);
    const double r = std::sqrt(d.x * d.x + d.y * d.y);
    EXPECT_LE(r, param.scale + 1e-12);
  }
}

TEST_P(HemisphereSamplerTest, ProjectedRadiusSquaredIsUniform) {
  // Cosine weighting makes u = (r/scale)^2 uniform on [0,1]: mean 1/2,
  // variance 1/12. This is the invariant the bin parameterization relies on.
  Lcg48 rng(33);
  const auto& param = GetParam();
  const int n = 40000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const Vec3 d = param.fn(rng, param.scale);
    const double u = (d.x * d.x + d.y * d.y) / (param.scale * param.scale);
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(sum2 / n - mean * mean, 1.0 / 12.0, 0.01);
}

TEST_P(HemisphereSamplerTest, AzimuthIsUniform) {
  Lcg48 rng(44);
  const auto& param = GetParam();
  const int n = 32000;
  constexpr int kBins = 16;
  int counts[kBins] = {};
  for (int i = 0; i < n; ++i) {
    const Vec3 d = param.fn(rng, param.scale);
    double th = std::atan2(d.y, d.x);
    if (th < 0) th += 2.0 * 3.14159265358979323846;
    ++counts[static_cast<int>(th / (2.0 * 3.14159265358979323846) * kBins) % kBins];
  }
  const double expected = static_cast<double>(n) / kBins;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, 5.0 * std::sqrt(expected));
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndScales, HemisphereSamplerTest,
    ::testing::Values(SamplerCase{"rejection_full", &sample_hemisphere_rejection, 1.0},
                      SamplerCase{"formula_full", &sample_hemisphere_formula, 1.0},
                      SamplerCase{"rejection_sun", &sample_hemisphere_rejection, 0.25},
                      SamplerCase{"formula_sun", &sample_hemisphere_formula, 0.25},
                      SamplerCase{"rejection_narrow", &sample_hemisphere_rejection, 0.005}),
    [](const ::testing::TestParamInfo<SamplerCase>& info) { return info.param.name; });

TEST(HemisphereSampling, CosineMeanZ) {
  // For the full hemisphere E[z] = E[cos theta] = 2/3 under cosine weighting.
  Lcg48 rng(55);
  const int n = 60000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += sample_hemisphere_rejection(rng).z;
  EXPECT_NEAR(sum / n, 2.0 / 3.0, 0.005);
}

TEST(HemisphereSampling, BothKernelsSameMoments) {
  Lcg48 r1(66), r2(66);
  const int n = 50000;
  double m1 = 0, m2 = 0, z1 = 0, z2 = 0;
  for (int i = 0; i < n; ++i) {
    const Vec3 a = sample_hemisphere_rejection(r1);
    const Vec3 b = sample_hemisphere_formula(r2);
    m1 += a.x * a.x + a.y * a.y;
    m2 += b.x * b.x + b.y * b.y;
    z1 += a.z;
    z2 += b.z;
  }
  EXPECT_NEAR(m1 / n, m2 / n, 0.01);
  EXPECT_NEAR(z1 / n, z2 / n, 0.005);
}

TEST(HemisphereSampling, RejectionAcceptanceRate) {
  // The loop accepts with probability pi/4, so the mean iteration count is
  // 4/pi ~ 1.273 (chapter 4's geometric series).
  Lcg48 rng(77);
  const int n = 40000;
  long long iterations = 0;
  for (int i = 0; i < n; ++i) {
    int it = 0;
    sample_hemisphere_rejection_counted(rng, 1.0, it);
    iterations += it;
  }
  EXPECT_NEAR(static_cast<double>(iterations) / n, 4.0 / 3.14159265358979323846, 0.02);
}

TEST(HemisphereSampling, QuarterDegreeSunCone) {
  // scale = 0.005 limits the polar angle to asin(0.005) ~ 0.286 degrees.
  Lcg48 rng(88);
  double max_angle = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const Vec3 d = sample_hemisphere_rejection(rng, 0.005);
    max_angle = std::max(max_angle, std::acos(d.z));
  }
  EXPECT_LT(max_angle, std::asin(0.005) + 1e-9);
  EXPECT_GT(max_angle, 0.5 * std::asin(0.005));  // cone is actually filled
}

TEST(HemisphereSampling, DeterministicGivenStream) {
  Lcg48 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    const Vec3 va = sample_hemisphere_rejection(a);
    const Vec3 vb = sample_hemisphere_rejection(b);
    EXPECT_EQ(va.x, vb.x);
    EXPECT_EQ(va.y, vb.y);
    EXPECT_EQ(va.z, vb.z);
  }
}

}  // namespace
}  // namespace photon
