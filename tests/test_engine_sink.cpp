// BufferedForestSink contracts: batching may reorder records *across* trees
// but never within one, so a single worker stays bitwise identical to the
// serial ForestSink at any flush threshold, and multi-worker runs conserve
// per-tree record totals.
#include "engine/sink.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "engine/backend.hpp"
#include "geom/scenes.hpp"
#include "par/shared.hpp"
#include "sim/simulator.hpp"

namespace photon {
namespace {

BounceRecord make_record(Lcg48& rng, int n_patches) {
  BounceRecord rec;
  rec.patch = static_cast<std::int32_t>(rng.uniform() * n_patches);
  if (rec.patch >= n_patches) rec.patch = n_patches - 1;
  rec.front = rng.uniform() < 0.7;
  rec.coords = BinCoords::from_local_dir(
      rng.uniform(), rng.uniform(),
      Vec3{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, 0.2 + rng.uniform()});
  rec.channel = static_cast<std::uint8_t>(rng.uniform() * 3);
  return rec;
}

TEST(BufferedForestSink, MatchesDirectForestSinkBitwise) {
  const int n_patches = 7;
  const int n_records = 5000;
  BinForest direct(n_patches);
  BinForest buffered(n_patches);
  std::vector<std::mutex> mutexes(2 * n_patches);

  ForestSink direct_sink(direct);
  {
    // Deliberately awkward threshold so the final flush happens mid-buffer
    // through the destructor.
    BufferedForestSink buffered_sink(buffered, mutexes, 33);
    Lcg48 rng_a(42);
    Lcg48 rng_b(42);
    for (int i = 0; i < n_records; ++i) {
      direct_sink.record(make_record(rng_a, n_patches));
      buffered_sink.record(make_record(rng_b, n_patches));
    }
  }  // destructor flushes the tail

  EXPECT_TRUE(direct == buffered);
}

TEST(OrderedRouterSink, AppliesOneBatchInSourceRankOrder) {
  // The canonical-order seam of dist-particle and hybrid: this rank's held
  // slice must apply in its own source slot, between the neighbours'
  // incoming buffers, so per-tree order is a pure function of the batch
  // schedule. Reproduce the order by hand against a plain ForestSink.
  const int n_patches = 5;
  const int rank = 1, P = 3;
  std::vector<int> owner(n_patches, rank);  // everything owned here
  Lcg48 rng(7);

  // Source-rank slices of one batch window, each in its trace order.
  std::vector<std::vector<BounceRecord>> slices(P);
  for (int s = 0; s < P; ++s) {
    for (int i = 0; i < 200; ++i) slices[static_cast<std::size_t>(s)].push_back(make_record(rng, n_patches));
  }

  BinForest routed(n_patches);
  std::uint64_t applied = 0;
  WireBuffer wire(P);
  OrderedRouterSink sink(routed, owner, rank, wire, applied);
  for (const BounceRecord& rec : slices[static_cast<std::size_t>(rank)]) sink.record(rec);
  std::vector<Bytes> incoming(P);
  for (int s = 0; s < P; ++s) {
    if (s == rank) continue;
    WireBuffer w(P);
    for (const BounceRecord& rec : slices[static_cast<std::size_t>(s)]) w.append(rank, to_wire(rec));
    incoming[static_cast<std::size_t>(s)] = w.take()[static_cast<std::size_t>(rank)];
  }
  sink.apply_batch(sink.take_held(), incoming);

  BinForest expected(n_patches);
  ForestSink direct(expected);
  for (int s = 0; s < P; ++s) {
    for (const BounceRecord& rec : slices[static_cast<std::size_t>(s)]) direct.record(rec);
  }
  EXPECT_TRUE(routed == expected);
  EXPECT_EQ(applied, static_cast<std::uint64_t>(P) * 200u);
}

TEST(OrderedRouterSink, RoutesForeignRecordsToTheWire) {
  const int n_patches = 4;
  std::vector<int> owner = {0, 1, 0, 1};
  Lcg48 rng(11);
  BinForest forest(n_patches);
  std::uint64_t applied = 0;
  WireBuffer wire(2);
  OrderedRouterSink sink(forest, owner, 0, wire, applied);
  for (int i = 0; i < 100; ++i) sink.record(make_record(rng, n_patches));
  const std::vector<BounceRecord> held = sink.take_held();
  // Held records are all owned; everything else went to rank 1's buffer.
  for (const BounceRecord& rec : held) EXPECT_EQ(owner[static_cast<std::size_t>(rec.patch)], 0);
  EXPECT_EQ(held.size() + wire.buffer(1).size() / sizeof(WireRecord), 100u);
  EXPECT_TRUE(wire.buffer(0).empty());
  // Nothing is tallied until apply_batch runs.
  EXPECT_EQ(applied, 0u);
  EXPECT_EQ(forest.total_tally_all(), 0u);
}

TEST(BufferedForestSink, ExplicitFlushDrainsEverything) {
  const int n_patches = 3;
  BinForest forest(n_patches);
  std::vector<std::mutex> mutexes(2 * n_patches);
  BufferedForestSink sink(forest, mutexes, 1000000);  // never auto-flushes
  Lcg48 rng(9);
  for (int i = 0; i < 123; ++i) sink.record(make_record(rng, n_patches));
  EXPECT_EQ(forest.total_tally_all(), 0u);  // still buffered
  sink.flush();
  EXPECT_EQ(forest.total_tally_all(), 123u);
  sink.flush();  // idempotent on an empty buffer
  EXPECT_EQ(forest.total_tally_all(), 123u);
}

TEST(BufferedForestSink, ThresholdIsClampedToOne) {
  const int n_patches = 2;
  BinForest forest(n_patches);
  std::vector<std::mutex> mutexes(2 * n_patches);
  BufferedForestSink sink(forest, mutexes, 0);
  EXPECT_EQ(sink.threshold(), 1u);
  Lcg48 rng(5);
  sink.record(make_record(rng, n_patches));
  // Threshold 1 flushes on every record — nothing left buffered.
  EXPECT_EQ(forest.total_tally_all(), 1u);
}

class BufferedSharedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferedSharedTest, OneWorkerIsBitwisePhotonStreamSerialAtAnyThreshold) {
  // The pool-backed shared path no longer routes through BufferedForestSink
  // (chunk buffers drain single-threaded), so sink_buffer must be inert: at
  // every threshold shared@1 stays bitwise equal to the serial photon-stream
  // reference.
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 3000;
  cfg.workers = 1;
  cfg.sink_buffer = GetParam();

  RunConfig rc = cfg;
  rc.photon_streams = true;
  const RunResult serial = run_serial(s, rc);
  const RunResult shared = run_shared(s, cfg);
  EXPECT_TRUE(serial.forest == shared.forest)
      << "sink_buffer=" << cfg.sink_buffer << " broke shared@1 determinism";
  EXPECT_EQ(serial.counters.bounces, shared.counters.bounces);
}

TEST_P(BufferedSharedTest, FourWorkersMatchPerTreeTotalsExactly) {
  // Every photon draws from its own disjoint stream, so four pool workers
  // reproduce the serial photon-stream run's per-tree record totals EXACTLY
  // (the old leapfrog-union version of this test needed a split-rounding
  // tolerance; the bitwise contract needs none).
  const int T = 4;
  const Scene s = scenes::cornell_box();
  RunConfig cfg;
  cfg.photons = 2000 * static_cast<std::uint64_t>(T);
  cfg.workers = T;
  cfg.sink_buffer = GetParam();
  const RunResult shared = run_shared(s, cfg);

  RunConfig rc = cfg;
  rc.photon_streams = true;
  const RunResult ref = run_serial(s, rc);

  ASSERT_EQ(shared.forest.tree_count(), ref.forest.tree_count());
  for (std::size_t i = 0; i < shared.forest.tree_count(); ++i) {
    for (int ch = 0; ch < kNumChannels; ++ch) {
      EXPECT_EQ(shared.forest.tree_at(static_cast<int>(i)).total_tally(ch),
                ref.forest.tree_at(static_cast<int>(i)).total_tally(ch))
          << "tree " << i << " channel " << ch << " sink_buffer=" << cfg.sink_buffer;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, BufferedSharedTest,
                         ::testing::Values(1u, 4u, 256u));

}  // namespace
}  // namespace photon
