#include "analysis/legendre.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace photon {
namespace {

TEST(Legendre, LowOrderPolynomials) {
  EXPECT_DOUBLE_EQ(legendre_p(0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(legendre_p(1, 0.3), 0.3);
  EXPECT_NEAR(legendre_p(2, 0.3), 0.5 * (3 * 0.09 - 1), 1e-12);
  EXPECT_NEAR(legendre_p(3, 0.5), 0.5 * (5 * 0.125 - 3 * 0.5), 1e-12);
}

TEST(Legendre, EndpointValues) {
  for (int n = 0; n < 10; ++n) {
    EXPECT_NEAR(legendre_p(n, 1.0), 1.0, 1e-12);
    EXPECT_NEAR(legendre_p(n, -1.0), n % 2 == 0 ? 1.0 : -1.0, 1e-12);
  }
}

TEST(Legendre, OrthogonalityByQuadrature) {
  // integral P_m P_n = 2/(2n+1) delta_mn.
  const int n = 2000;
  const double h = 2.0 / n;
  for (int a = 0; a < 5; ++a) {
    for (int b = 0; b <= a; ++b) {
      double sum = 0.0;
      for (int i = 0; i <= n; ++i) {
        const double x = -1.0 + h * i;
        const double w = (i == 0 || i == n) ? 0.5 : 1.0;
        sum += w * legendre_p(a, x) * legendre_p(b, x);
      }
      sum *= h;
      const double expected = a == b ? 2.0 / (2 * a + 1) : 0.0;
      EXPECT_NEAR(sum, expected, 1e-5) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Legendre, SeriesReconstructsPolynomialExactly) {
  // x^2 lives in span{P0, P2}; a 3-term series must reproduce it.
  const auto coeffs = legendre_series([](double x) { return x * x; }, 3);
  for (double x = -1.0; x <= 1.0; x += 0.1) {
    EXPECT_NEAR(eval_legendre_series(coeffs, x), x * x, 1e-9);
  }
  EXPECT_NEAR(coeffs[1], 0.0, 1e-9);  // even function: no P1 content
}

TEST(Legendre, SeriesCoefficientsOfConstant) {
  const auto coeffs = legendre_series([](double) { return 2.0; }, 4);
  EXPECT_NEAR(coeffs[0], 2.0, 1e-9);
  for (std::size_t i = 1; i < coeffs.size(); ++i) EXPECT_NEAR(coeffs[i], 0.0, 1e-9);
}

TEST(Legendre, SpikeFunctionShape) {
  EXPECT_DOUBLE_EQ(specular_spike(0.0), 1.0);
  EXPECT_LT(specular_spike(0.2), 0.001);
  EXPECT_DOUBLE_EQ(specular_spike(0.05), specular_spike(-0.05));
}

TEST(Legendre, ThirtyTermSpikeApproximationRings) {
  // Fig 2.4: "Even at 30 terms the accuracy leaves much to be desired, and
  // moreover, there will always be ringing near the spike." The truncated
  // series must overshoot below zero somewhere.
  const double half_range = 1.5;  // radians, as in the figure
  const auto f = [&](double x) { return specular_spike(x * half_range); };
  const auto coeffs = legendre_series(f, 30);

  double min_val = 1e9, max_err = 0.0;
  for (double x = -1.0; x <= 1.0; x += 0.002) {
    const double approx = eval_legendre_series(coeffs, x);
    min_val = std::min(min_val, approx);
    max_err = std::max(max_err, std::abs(approx - f(x)));
  }
  EXPECT_LT(min_val, -0.005) << "no ringing observed";
  EXPECT_GT(max_err, 0.05) << "30 terms should NOT capture the spike well";
}

TEST(Legendre, MoreTermsReduceL2Error) {
  const double half_range = 1.5;
  const auto f = [&](double x) { return specular_spike(x * half_range); };
  auto l2_error = [&](int terms) {
    const auto coeffs = legendre_series(f, terms);
    double err = 0.0;
    const int n = 1000;
    for (int i = 0; i <= n; ++i) {
      const double x = -1.0 + 2.0 * i / n;
      const double d = eval_legendre_series(coeffs, x) - f(x);
      err += d * d;
    }
    return err;
  };
  const double e10 = l2_error(10);
  const double e30 = l2_error(30);
  const double e90 = l2_error(90);
  EXPECT_LT(e30, e10);
  EXPECT_LT(e90, e30);
}

TEST(Legendre, EvalMatchesDirectSummation) {
  const std::vector<double> coeffs{0.5, -1.0, 0.25, 0.125};
  for (double x = -1.0; x <= 1.0; x += 0.25) {
    double direct = 0.0;
    for (std::size_t l = 0; l < coeffs.size(); ++l) {
      direct += coeffs[l] * legendre_p(static_cast<int>(l), x);
    }
    EXPECT_NEAR(eval_legendre_series(coeffs, x), direct, 1e-12);
  }
}

}  // namespace
}  // namespace photon
