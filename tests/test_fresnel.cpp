#include "material/fresnel.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace photon {
namespace {

constexpr double kGlassIor = 1.5;

TEST(Fresnel, NormalIncidenceMatchesClosedForm) {
  // R(0) = ((n-1)/(n+1))^2 for both polarizations.
  const double expected = std::pow((kGlassIor - 1.0) / (kGlassIor + 1.0), 2.0);
  EXPECT_NEAR(fresnel_rs(1.0, kGlassIor), expected, 1e-12);
  EXPECT_NEAR(fresnel_rp(1.0, kGlassIor), expected, 1e-12);
  EXPECT_NEAR(fresnel_unpolarized(1.0, kGlassIor), expected, 1e-12);
}

TEST(Fresnel, GrazingIncidenceIsTotal) {
  EXPECT_NEAR(fresnel_rs(0.0, kGlassIor), 1.0, 1e-9);
  EXPECT_NEAR(fresnel_rp(0.0, kGlassIor), 1.0, 1e-9);
}

TEST(Fresnel, BrewsterAngleKillsP) {
  const double brewster = brewster_angle(kGlassIor);
  EXPECT_NEAR(brewster, std::atan(1.5), 1e-12);
  const double rp = fresnel_rp(std::cos(brewster), kGlassIor);
  EXPECT_NEAR(rp, 0.0, 1e-12);
  // s-polarized light still reflects there.
  EXPECT_GT(fresnel_rs(std::cos(brewster), kGlassIor), 0.05);
}

TEST(Fresnel, RsAlwaysAtLeastRp) {
  for (double c = 0.02; c <= 1.0; c += 0.02) {
    EXPECT_GE(fresnel_rs(c, kGlassIor) + 1e-12, fresnel_rp(c, kGlassIor)) << "cos_i=" << c;
  }
}

TEST(Fresnel, ReflectanceInUnitRange) {
  for (const double ior : {1.05, 1.33, 1.5, 2.4, 10.0}) {
    for (double c = 0.0; c <= 1.0; c += 0.05) {
      const double rs = fresnel_rs(c, ior);
      const double rp = fresnel_rp(c, ior);
      EXPECT_GE(rs, 0.0);
      EXPECT_LE(rs, 1.0);
      EXPECT_GE(rp, 0.0);
      EXPECT_LE(rp, 1.0);
    }
  }
}

TEST(Fresnel, RsMonotonicallyIncreasesTowardGrazing) {
  double prev = fresnel_rs(1.0, kGlassIor);
  for (double c = 0.95; c >= 0.0; c -= 0.05) {
    const double rs = fresnel_rs(c, kGlassIor);
    EXPECT_GE(rs + 1e-12, prev);
    prev = rs;
  }
}

TEST(Fresnel, SchlickApproximatesUnpolarized) {
  const double f0 = std::pow((kGlassIor - 1.0) / (kGlassIor + 1.0), 2.0);
  for (double c = 0.3; c <= 1.0; c += 0.1) {
    EXPECT_NEAR(schlick(c, f0), fresnel_unpolarized(c, kGlassIor), 0.03) << "cos_i=" << c;
  }
}

TEST(Fresnel, SchlickLimits) {
  EXPECT_DOUBLE_EQ(schlick(1.0, 0.04), 0.04);
  EXPECT_NEAR(schlick(0.0, 0.04), 1.0, 1e-12);
}

TEST(Fresnel, IorFromF0RoundTrip) {
  for (const double ior : {1.2, 1.5, 2.0, 3.0}) {
    const double f0 = std::pow((ior - 1.0) / (ior + 1.0), 2.0);
    EXPECT_NEAR(ior_from_f0(f0), ior, 1e-9);
  }
}

TEST(Fresnel, IorFromF0HandlesExtremes) {
  EXPECT_NEAR(ior_from_f0(0.0), 1.0, 1e-12);
  EXPECT_GT(ior_from_f0(0.99), 100.0);  // metal-like reflectance -> huge ior
}

TEST(Fresnel, HigherIorReflectsMore) {
  EXPECT_LT(fresnel_unpolarized(1.0, 1.3), fresnel_unpolarized(1.0, 2.4));
}

}  // namespace
}  // namespace photon
