#include "hist/bintree.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/rng.hpp"
#include "core/sampling.hpp"

namespace photon {
namespace {

BinCoords coords(double s, double t, double u, double theta) {
  BinCoords c;
  c.s = static_cast<float>(s);
  c.t = static_cast<float>(t);
  c.u = static_cast<float>(u);
  c.theta = static_cast<float>(theta);
  return c;
}

TEST(BinRegion, FullDomain) {
  const BinRegion r = BinRegion::full();
  EXPECT_FLOAT_EQ(r.extent(0), 1.0f);
  EXPECT_FLOAT_EQ(r.extent(3), static_cast<float>(kTwoPi));
  EXPECT_NEAR(r.measure(), kTwoPi, 1e-5);
}

TEST(BinRegion, ChildrenPartitionMeasure) {
  const BinRegion r = BinRegion::full();
  for (int axis = 0; axis < kBinDims; ++axis) {
    const BinRegion lo = r.child(axis, 0);
    const BinRegion hi = r.child(axis, 1);
    EXPECT_NEAR(lo.measure() + hi.measure(), r.measure(), 1e-5);
    EXPECT_FLOAT_EQ(lo.hi[static_cast<std::size_t>(axis)], r.mid(axis));
    EXPECT_FLOAT_EQ(hi.lo[static_cast<std::size_t>(axis)], r.mid(axis));
  }
}

TEST(BinRegion, HalfOf) {
  const BinRegion r = BinRegion::full();
  EXPECT_EQ(r.half_of(0, 0.25f), 0);
  EXPECT_EQ(r.half_of(0, 0.75f), 1);
  EXPECT_EQ(r.half_of(3, 1.0f), 0);
  EXPECT_EQ(r.half_of(3, 5.0f), 1);
}

TEST(BinCoords, FromLocalDir) {
  // Straight up: r^2 = 0.
  BinCoords c = BinCoords::from_local_dir(0.3, 0.7, Vec3{0, 0, 1});
  EXPECT_FLOAT_EQ(c.s, 0.3f);
  EXPECT_FLOAT_EQ(c.t, 0.7f);
  EXPECT_FLOAT_EQ(c.u, 0.0f);

  // 45 degrees toward +x: u = sin^2(45) = 0.5, theta = 0.
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  c = BinCoords::from_local_dir(0, 0, Vec3{inv_sqrt2, 0, inv_sqrt2});
  EXPECT_NEAR(c.u, 0.5, 1e-6);
  EXPECT_NEAR(c.theta, 0.0, 1e-6);

  // Toward -y: theta = 3*pi/2.
  c = BinCoords::from_local_dir(0, 0, Vec3{0, -inv_sqrt2, inv_sqrt2});
  EXPECT_NEAR(c.theta, 3.0 * kTwoPi / 4.0, 1e-6);
}

TEST(BinCoords, ThetaStaysInsideHalfOpenInterval) {
  // Regression: a direction a hair below the +x axis gives a tiny negative
  // atan2; th + 2pi is then a double just under 2pi whose float rounding is
  // exactly float(2pi) — on the closed upper edge of the root region rather
  // than inside the half-open [0, 2pi). from_local_dir must wrap it to the
  // periodically equivalent 0.
  const BinCoords c = BinCoords::from_local_dir(0.5, 0.5, Vec3{0.7, -1e-18, 0.5});
  EXPECT_GE(c.theta, 0.0f);
  EXPECT_LT(c.theta, static_cast<float>(kTwoPi));
  EXPECT_FLOAT_EQ(c.theta, 0.0f);

  // The wrap must not disturb angles genuinely close to (but below) 2pi.
  const BinCoords lo = BinCoords::from_local_dir(0.5, 0.5, Vec3{0.7, -1e-4, 0.5});
  EXPECT_LT(lo.theta, static_cast<float>(kTwoPi));
  EXPECT_GT(lo.theta, 6.28f);
}

TEST(BinTree, StartsAsSingleLeaf) {
  const BinTree tree;
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_EQ(tree.depth(), 0);
  EXPECT_EQ(tree.total_tally(0), 0u);
}

TEST(BinTree, RecordTallies) {
  BinTree tree;
  tree.record(coords(0.5, 0.5, 0.5, 1.0), 0);
  tree.record(coords(0.5, 0.5, 0.5, 1.0), 0);
  tree.record(coords(0.5, 0.5, 0.5, 1.0), 2);
  EXPECT_EQ(tree.total_tally(0), 2u);
  EXPECT_EQ(tree.total_tally(1), 0u);
  EXPECT_EQ(tree.total_tally(2), 1u);
}

TEST(BinTree, UniformInputSplitsOnlyByCount) {
  BinTree tree;
  Lcg48 rng(1);
  for (int i = 0; i < 5000; ++i) {
    tree.record(coords(rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform() * kTwoPi), 0);
  }
  // No significant gradient anywhere: only the count-driven refinement rule
  // may split (once at the root for 5000 photons with the default 1024
  // threshold, as the depth-1 children never reach their 2048 threshold).
  // Allow a little slack for rare significance false positives.
  EXPECT_LE(tree.node_count(), 9u);
  // Count-driven splits (split_n at the 1024 threshold or beyond) must be
  // balanced: at the moment of the split, the speculative half-count along
  // the chosen axis was close to 50%. Smaller splits are the occasional
  // significance false positive and are legitimately imbalanced.
  for (std::size_t i = 0; i < tree.node_count(); ++i) {
    const BinNode& n = tree.node(static_cast<int>(i));
    if (n.is_leaf() || n.split_n < 1024) continue;
    const double frac = static_cast<double>(n.split_left[static_cast<std::size_t>(n.axis)]) /
                        static_cast<double>(n.split_n);
    EXPECT_NEAR(frac, 0.5, 0.1);
  }
}

TEST(BinTree, StepInSCausesSplitOnS) {
  BinTree tree;
  Lcg48 rng(2);
  // All photons in s < 0.5; other coordinates uniform.
  for (int i = 0; i < 500; ++i) {
    tree.record(coords(rng.uniform() * 0.5, rng.uniform(), rng.uniform(),
                       rng.uniform() * kTwoPi),
                0);
  }
  EXPECT_GT(tree.node_count(), 1u);
  EXPECT_EQ(tree.node(0).axis, static_cast<std::int8_t>(BinAxis::kS));
}

TEST(BinTree, StepInThetaSplitsOnTheta) {
  BinTree tree;
  Lcg48 rng(3);
  for (int i = 0; i < 500; ++i) {
    tree.record(coords(rng.uniform(), rng.uniform(), rng.uniform(),
                       kTwoPi / 2.0 + rng.uniform() * kTwoPi / 2.0),
                0);
  }
  EXPECT_EQ(tree.node(0).axis, static_cast<std::int8_t>(BinAxis::kTheta));
}

TEST(BinTree, SplitRedistributesTallies) {
  BinTree tree;
  Lcg48 rng(4);
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    // 80/20 split in t.
    const double t = rng.uniform() < 0.8 ? rng.uniform() * 0.5 : 0.5 + rng.uniform() * 0.5;
    tree.record(coords(rng.uniform(), t, rng.uniform(), rng.uniform() * kTwoPi), 0);
  }
  // Total conserved across all splits (up to rounding: one photon per split).
  const std::uint64_t total = tree.total_tally(0);
  EXPECT_NEAR(static_cast<double>(total), n, static_cast<double>(tree.node_count()));
}

TEST(BinTree, ConservationIsExactPerChannel) {
  BinTree tree;
  Lcg48 rng(5);
  std::uint64_t pushed[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) {
    const int ch = static_cast<int>(rng.uniform_int(3));
    ++pushed[ch];
    const double s = rng.uniform() < 0.9 ? rng.uniform() * 0.3 : rng.uniform();
    tree.record(coords(s, rng.uniform(), rng.uniform(), rng.uniform() * kTwoPi), ch);
  }
  for (int ch = 0; ch < 3; ++ch) {
    // Proportional redistribution rounds; allow one photon per split event.
    EXPECT_NEAR(static_cast<double>(tree.total_tally(ch)), static_cast<double>(pushed[ch]),
                static_cast<double>(tree.node_count()))
        << "channel " << ch;
  }
}

TEST(BinTree, FindLeafDescendsCorrectly) {
  BinTree tree;
  Lcg48 rng(6);
  for (int i = 0; i < 2000; ++i) {
    tree.record(coords(rng.uniform() * 0.5, rng.uniform(), rng.uniform(),
                       rng.uniform() * kTwoPi),
                0);
  }
  ASSERT_GT(tree.node_count(), 1u);
  // Leaf found must contain the query point.
  for (int i = 0; i < 200; ++i) {
    const BinCoords c =
        coords(rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform() * kTwoPi);
    const int leaf = tree.find_leaf(c);
    EXPECT_TRUE(tree.node(leaf).region.contains(c));
    EXPECT_TRUE(tree.node(leaf).is_leaf());
  }
}

TEST(BinTree, LambertianDirectionsDoNotSplitAngularAxes) {
  // The whole point of binning (r^2, theta): a Lambertian distribution is
  // uniform there, so a diffuse surface should split on position only.
  BinTree tree;
  Lcg48 rng(7);
  for (int i = 0; i < 4000; ++i) {
    const Vec3 d = sample_hemisphere_rejection(rng);
    // Position concentrated in one corner to force positional splits.
    tree.record(BinCoords::from_local_dir(rng.uniform() * 0.25, rng.uniform() * 0.25, d), 0);
  }
  int angular_splits = 0, positional_splits = 0;
  for (std::size_t i = 0; i < tree.node_count(); ++i) {
    const BinNode& n = tree.node(static_cast<int>(i));
    if (n.is_leaf()) continue;
    if (n.axis >= 2) {
      ++angular_splits;
    } else {
      ++positional_splits;
    }
  }
  EXPECT_GT(positional_splits, 0);
  EXPECT_LE(angular_splits, positional_splits / 4);
}

TEST(BinTree, CollimatedDirectionsSplitAngularAxes) {
  // A specular-like angular spike must drive angular subdivision.
  BinTree tree;
  Lcg48 rng(8);
  for (int i = 0; i < 4000; ++i) {
    const Vec3 d = sample_hemisphere_rejection(rng, 0.15);  // tight cone
    tree.record(BinCoords::from_local_dir(rng.uniform(), rng.uniform(), d), 0);
  }
  int u_splits = 0;
  for (std::size_t i = 0; i < tree.node_count(); ++i) {
    const BinNode& n = tree.node(static_cast<int>(i));
    if (!n.is_leaf() && n.axis == static_cast<std::int8_t>(BinAxis::kU)) ++u_splits;
  }
  EXPECT_GT(u_splits, 0);
}

TEST(BinTree, RespectsMaxNodes) {
  BinTree tree(SplitPolicy{}, /*max_nodes=*/5);
  Lcg48 rng(9);
  for (int i = 0; i < 20000; ++i) {
    tree.record(coords(rng.uniform() * 0.1, rng.uniform() * 0.1, rng.uniform() * 0.1,
                       rng.uniform() * 0.1),
                0);
  }
  EXPECT_LE(tree.node_count(), 5u);
}

TEST(BinTree, MemoryGrowsWithNodes) {
  BinTree small, large;
  Lcg48 rng(10);
  for (int i = 0; i < 4000; ++i) {
    large.record(coords(rng.uniform() < 0.9 ? 0.1 : 0.9, rng.uniform(), rng.uniform(),
                        rng.uniform() * kTwoPi),
                 0);
  }
  EXPECT_GT(large.memory_bytes(), small.memory_bytes());
}

TEST(BinTree, SerializationRoundTrip) {
  BinTree tree;
  Lcg48 rng(11);
  for (int i = 0; i < 3000; ++i) {
    tree.record(coords(rng.uniform() * 0.4, rng.uniform(), rng.uniform(),
                       rng.uniform() * kTwoPi),
                static_cast<int>(rng.uniform_int(3)));
  }
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  tree.save(buf);
  const BinTree loaded = BinTree::load(buf);
  EXPECT_TRUE(tree == loaded);
  EXPECT_EQ(tree.node_count(), loaded.node_count());
  EXPECT_EQ(tree.total_tally(1), loaded.total_tally(1));
}

TEST(BinTree, DeterministicForSameInput) {
  auto build = [] {
    BinTree tree;
    Lcg48 rng(12);
    for (int i = 0; i < 2000; ++i) {
      tree.record(coords(rng.uniform() * 0.6, rng.uniform(), rng.uniform(),
                         rng.uniform() * kTwoPi),
                  0);
    }
    return tree;
  };
  EXPECT_TRUE(build() == build());
}

TEST(BinTree, CountEstimateUsesLeafMeasure) {
  BinTree tree;
  for (int i = 0; i < 10; ++i) tree.record(coords(0.5, 0.5, 0.5, 1.0), 0);
  const BinTree::Estimate est = tree.count_estimate(coords(0.5, 0.5, 0.5, 1.0), 0);
  EXPECT_DOUBLE_EQ(est.count, 10.0);
  EXPECT_NEAR(est.measure, kTwoPi, 1e-5);
}

TEST(BinTree, DegenerateZeroPolicyDoesNotExplode) {
  // A (mis)configured min_count = max_leaf_count = 0 must not divide 0/0 in
  // the split redistribution or split recursively on the first record.
  SplitPolicy policy;
  policy.min_count = 0;
  policy.max_leaf_count = 0;
  BinTree tree(policy);
  for (int i = 0; i < 100; ++i) tree.record(coords(0.3, 0.6, 0.2, 2.0), 1);
  EXPECT_EQ(tree.total_tally(1), 100u);
  EXPECT_LT(tree.node_count(), 1000u);
}

}  // namespace
}  // namespace photon
