#include "geom/scene.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/rng.hpp"
#include "geom/scene_io.hpp"
#include "geom/scenes.hpp"

namespace photon {
namespace {

TEST(Scene, AddAndQuery) {
  Scene s;
  const int mat = s.add_material(Material::lambertian({0.5, 0.5, 0.5}));
  const int p = s.add_patch(Patch({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, mat));
  EXPECT_EQ(s.patch_count(), 1u);
  EXPECT_EQ(s.material_of(p).diffuse.r, 0.5);
}

TEST(Scene, LuminairePowerDefaultsToEmissionTimesArea) {
  Scene s;
  const int mat = s.add_material(Material::emitter({2.0, 4.0, 6.0}));
  const int p = s.add_patch(Patch({0, 0, 0}, {2, 0, 0}, {0, 3, 0}, mat));  // area 6
  s.add_luminaire(p);
  ASSERT_EQ(s.luminaires().size(), 1u);
  EXPECT_DOUBLE_EQ(s.luminaires()[0].power.r, 12.0);
  EXPECT_DOUBLE_EQ(s.luminaires()[0].power.g, 24.0);
  EXPECT_DOUBLE_EQ(s.luminaires()[0].power.b, 36.0);
  EXPECT_DOUBLE_EQ(s.total_power().g, 24.0);
}

TEST(Scene, ExplicitLuminairePower) {
  Scene s;
  const int mat = s.add_material(Material::emitter({1, 1, 1}));
  const int p = s.add_patch(Patch({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, mat));
  s.add_luminaire(p, {5, 6, 7}, 0.5);
  EXPECT_DOUBLE_EQ(s.luminaires()[0].power.b, 7.0);
  EXPECT_DOUBLE_EQ(s.luminaires()[0].angular_scale, 0.5);
}

// --- the paper's three test geometries (Table 5.1 defining polygons) ---

TEST(Scenes, CornellBoxSize) {
  const Scene s = scenes::cornell_box();
  // Paper: ~30 defining polygons (33 in the appendix version).
  EXPECT_GE(s.patch_count(), 28u);
  EXPECT_LE(s.patch_count(), 35u);
  EXPECT_FALSE(s.luminaires().empty());
  EXPECT_TRUE(s.built());
}

TEST(Scenes, HarpsichordRoomSize) {
  const Scene s = scenes::harpsichord_room();
  // Paper: ~97-100 defining polygons.
  EXPECT_GE(s.patch_count(), 90u);
  EXPECT_LE(s.patch_count(), 115u);
  EXPECT_EQ(s.luminaires().size(), 16u);  // 2 skylights x (4 sun + 4 sky tiles)
}

TEST(Scenes, ComputerLabSize) {
  const Scene s = scenes::computer_lab();
  // Paper: ~2000 defining polygons.
  EXPECT_GE(s.patch_count(), 1900u);
  EXPECT_LE(s.patch_count(), 2100u);
  EXPECT_EQ(s.luminaires().size(), 24u);
}

TEST(Scenes, CornellContainsMirror) {
  const Scene s = scenes::cornell_box();
  bool has_mirror = false;
  for (const Patch& p : s.patches()) {
    const Material& m = s.material_of(p);
    if (m.specular.max_component() > 0.5 && m.diffuse.max_component() < 0.05) has_mirror = true;
  }
  EXPECT_TRUE(has_mirror);
}

TEST(Scenes, HarpsichordHasCollimatedSun) {
  const Scene s = scenes::harpsichord_room();
  int collimated = 0;
  for (const Luminaire& l : s.luminaires()) {
    if (l.angular_scale < 0.01) ++collimated;
  }
  EXPECT_EQ(collimated, 8);
}

TEST(Scenes, MaterialsAreEnergyConserving) {
  for (const char* name : {"cornell", "harpsichord", "lab"}) {
    const Scene s = scenes::by_name(name);
    for (const Material& m : s.materials()) {
      EXPECT_LE(m.diffuse.max_component(), 1.0) << name;
      EXPECT_LE(m.specular.max_component(), 1.0) << name;
    }
  }
}

TEST(Scenes, CornellRoomIsClosed) {
  // Rays from well inside the box must always hit something.
  const Scene s = scenes::cornell_box();
  Lcg48 rng(4242);
  for (int i = 0; i < 400; ++i) {
    const Vec3 origin{1.0 + 3.5 * rng.uniform(), 1.0 + 3.5 * rng.uniform(),
                      1.0 + 3.5 * rng.uniform()};
    Vec3 dir{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    if (dir.length_squared() < 1e-9) continue;
    EXPECT_TRUE(s.intersect(Ray(origin, dir.normalized())).has_value()) << "escaped at " << i;
  }
}

TEST(Scenes, WallNormalsPointInward) {
  // The first six patches of each room scene form the shell; their normals
  // must point toward the interior or every photon dies on first bounce.
  for (const char* name : {"cornell", "harpsichord", "lab"}) {
    const Scene s = scenes::by_name(name);
    const Vec3 center = s.bounds().center();
    for (int i = 0; i < 6; ++i) {
      const Patch& wall = s.patch(i);
      const Vec3 to_center = center - wall.point_at(0.5, 0.5);
      EXPECT_GT(dot(to_center, wall.normal()), 0.0)
          << name << " wall " << i << " faces outward";
    }
  }
}

TEST(Scenes, ByNameThrowsOnUnknown) {
  EXPECT_THROW(scenes::by_name("nonexistent"), std::invalid_argument);
}

TEST(Scenes, FurnaceIsClosedAndEmissive) {
  const Scene s = scenes::furnace_box(0.5);
  EXPECT_EQ(s.patch_count(), 6u);
  EXPECT_EQ(s.luminaires().size(), 6u);
  Lcg48 rng(1);
  for (int i = 0; i < 100; ++i) {
    const Vec3 origin{0.5 + rng.uniform(), 0.5 + rng.uniform(), 0.5 + rng.uniform()};
    Vec3 dir{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    if (dir.length_squared() < 1e-9) continue;
    EXPECT_TRUE(s.intersect(Ray(origin, dir.normalized())).has_value());
  }
}

// --- scene file I/O ---

TEST(SceneIo, RoundTripPreservesStructure) {
  const Scene original = scenes::cornell_box();
  std::stringstream buf;
  save_scene(original, buf);

  Scene loaded;
  ASSERT_TRUE(load_scene(buf, loaded));
  loaded.build();

  EXPECT_EQ(loaded.name(), original.name());
  ASSERT_EQ(loaded.patch_count(), original.patch_count());
  ASSERT_EQ(loaded.materials().size(), original.materials().size());
  ASSERT_EQ(loaded.luminaires().size(), original.luminaires().size());

  // Same intersections for probe rays.
  Lcg48 rng(31);
  for (int i = 0; i < 100; ++i) {
    const Vec3 origin{1 + 3 * rng.uniform(), 1 + 3 * rng.uniform(), 1 + 3 * rng.uniform()};
    Vec3 dir{rng.uniform() * 2 - 1, rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
    if (dir.length_squared() < 1e-9) continue;
    const Ray ray(origin, dir.normalized());
    const auto a = original.intersect(ray);
    const auto b = loaded.intersect(ray);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_EQ(a->patch, b->patch);
      EXPECT_NEAR(a->dist, b->dist, 1e-9);
    }
  }
}

TEST(SceneIo, RejectsBadMagic) {
  std::stringstream buf("not-a-scene 1\n");
  Scene s;
  EXPECT_FALSE(load_scene(buf, s));
}

TEST(SceneIo, RejectsBadMaterialIndex) {
  std::stringstream buf("photon-scene 1\npatch 0 0 0 1 0 0 0 1 0 3\n");
  Scene s;
  EXPECT_FALSE(load_scene(buf, s));
}

TEST(SceneIo, RejectsTruncatedInput) {
  std::stringstream buf("photon-scene 1\nmaterial 0.5 0.5\n");
  Scene s;
  EXPECT_FALSE(load_scene(buf, s));
}

TEST(SceneIo, FileRoundTrip) {
  const Scene original = scenes::furnace_box(0.3);
  const std::string path = ::testing::TempDir() + "/scene_roundtrip.txt";
  ASSERT_TRUE(save_scene(original, path));
  Scene loaded;
  ASSERT_TRUE(load_scene(path, loaded));
  EXPECT_EQ(loaded.patch_count(), original.patch_count());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace photon
