// WireBuffer / RouterSink contracts: records serialized in place into the
// per-destination byte buffers must round-trip bit for bit against the legacy
// vector-staged pack/unpack path, and the router must tally owned records
// locally while forwarding foreign ones untouched.
#include "engine/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/rng.hpp"
#include "engine/sink.hpp"

namespace photon {
namespace {

WireRecord random_record(Lcg48& rng, int n_patches) {
  WireRecord w;
  w.patch = static_cast<std::int32_t>(rng.uniform_int(static_cast<std::uint64_t>(n_patches)));
  w.s = static_cast<float>(rng.uniform());
  w.t = static_cast<float>(rng.uniform());
  w.u = static_cast<float>(rng.uniform());
  w.theta = static_cast<float>(rng.uniform() * kTwoPi);
  w.channel = static_cast<std::uint8_t>(rng.uniform_int(3));
  w.front = static_cast<std::uint8_t>(rng.uniform_int(2));
  return w;
}

FlightWire random_flight(Lcg48& rng) {
  FlightWire f{};
  f.px = rng.uniform();
  f.py = rng.uniform();
  f.pz = rng.uniform();
  f.dx = rng.uniform() * 2 - 1;
  f.dy = rng.uniform() * 2 - 1;
  f.dz = rng.uniform() * 2 - 1;
  f.rng_state = rng.next_bits();
  f.bounces = static_cast<std::int32_t>(rng.uniform_int(100));
  f.channel = static_cast<std::uint8_t>(rng.uniform_int(3));
  f.pol_s = static_cast<float>(rng.uniform());
  return f;
}

TEST(WireBuffer, RoundTripsRecordsAgainstLegacyPack) {
  // Fuzz: the in-place append must produce byte-identical buffers to the
  // vector-staged pack_records it replaces, for every destination.
  Lcg48 rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const int P = 1 + static_cast<int>(rng.uniform_int(7));
    WireBuffer wire(P);
    std::vector<std::vector<WireRecord>> staged(static_cast<std::size_t>(P));
    const int n = static_cast<int>(rng.uniform_int(400));
    for (int i = 0; i < n; ++i) {
      const int dest = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(P)));
      const WireRecord w = random_record(rng, 64);
      wire.append(dest, w);
      staged[static_cast<std::size_t>(dest)].push_back(w);
    }
    for (int d = 0; d < P; ++d) {
      const Bytes legacy = pack_records(staged[static_cast<std::size_t>(d)]);
      EXPECT_EQ(wire.buffer(d), legacy) << "trial " << trial << " dest " << d;
      // And the zero-copy walk sees exactly the staged sequence.
      std::size_t i = 0;
      for_each_wire<WireRecord>(wire.buffer(d), [&](const WireRecord& got) {
        ASSERT_LT(i, staged[static_cast<std::size_t>(d)].size());
        EXPECT_EQ(0, std::memcmp(&got, &staged[static_cast<std::size_t>(d)][i],
                                 sizeof(WireRecord)));
        ++i;
      });
      EXPECT_EQ(i, staged[static_cast<std::size_t>(d)].size());
    }
  }
}

TEST(WireBuffer, RoundTripsFlightsAgainstLegacyPack) {
  Lcg48 rng(77);
  WireBuffer wire(3);
  std::vector<FlightWire> staged;
  for (int i = 0; i < 257; ++i) {
    const FlightWire f = random_flight(rng);
    wire.append(1, f);
    staged.push_back(f);
  }
  EXPECT_EQ(wire.buffer(1), pack_flights(staged));
  const std::vector<FlightWire> back = unpack_flights(wire.buffer(1));
  ASSERT_EQ(back.size(), staged.size());
  for (std::size_t i = 0; i < staged.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&back[i], &staged[i], sizeof(FlightWire)));
  }
}

TEST(WireBuffer, TakeSurrendersAndResets) {
  WireBuffer wire(2);
  wire.append(0, WireRecord{});
  wire.append(1, WireRecord{});
  wire.append(1, WireRecord{});
  EXPECT_FALSE(wire.empty());
  EXPECT_EQ(wire.total_bytes(), 3 * sizeof(WireRecord));

  const std::vector<Bytes> out = wire.take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].size(), sizeof(WireRecord));
  EXPECT_EQ(out[1].size(), 2 * sizeof(WireRecord));
  EXPECT_TRUE(wire.empty());
  EXPECT_EQ(wire.destinations(), 2);
  wire.append(0, WireRecord{});  // usable immediately after take()
  EXPECT_EQ(wire.total_bytes(), sizeof(WireRecord));
}

TEST(RouterSink, RoutesOwnedLocallyAndForeignToWire) {
  const int n_patches = 6;
  BinForest forest(n_patches);
  const std::vector<int> owner = {0, 1, 2, 0, 1, 2};
  WireBuffer wire(3);
  std::uint64_t applied = 0;
  RouterSink sink(forest, owner, /*rank=*/1, wire, applied);

  Lcg48 rng(5);
  std::uint64_t local = 0;
  std::vector<std::uint64_t> foreign(3, 0);
  for (int i = 0; i < 1000; ++i) {
    const WireRecord w = random_record(rng, n_patches);
    sink.record(from_wire(w));
    const int o = owner[static_cast<std::size_t>(w.patch)];
    if (o == 1) {
      ++local;
    } else {
      ++foreign[static_cast<std::size_t>(o)];
    }
  }
  EXPECT_EQ(applied, local);
  EXPECT_EQ(forest.total_tally_all(), local);
  EXPECT_TRUE(wire.buffer(1).empty());  // never routes to self
  EXPECT_EQ(wire_count<WireRecord>(wire.buffer(0)), foreign[0]);
  EXPECT_EQ(wire_count<WireRecord>(wire.buffer(2)), foreign[2]);

  // Applying a foreign buffer on its owner tallies every record exactly once.
  BinForest other(n_patches);
  std::uint64_t other_applied = 0;
  RouterSink other_sink(other, owner, /*rank=*/0, wire, other_applied);
  other_sink.apply_incoming(wire.buffer(0));
  EXPECT_EQ(other_applied, foreign[0]);
  EXPECT_EQ(other.total_tally_all(), foreign[0]);
}

TEST(RouterSink, KeepsRoutingIntoTheBufferAfterTake) {
  // The overlap contract: take() hands batch k to the exchange and the sink
  // keeps serializing batch k+1 into the same (now empty) WireBuffer.
  BinForest forest(2);
  const std::vector<int> owner = {1, 1};
  WireBuffer wire(2);
  std::uint64_t applied = 0;
  RouterSink sink(forest, owner, /*rank=*/0, wire, applied);
  sink.record(BounceRecord{.patch = 0});
  const std::vector<Bytes> batch_k = wire.take();
  sink.record(BounceRecord{.patch = 1});
  sink.record(BounceRecord{.patch = 1});
  EXPECT_EQ(batch_k[1].size(), sizeof(WireRecord));
  EXPECT_EQ(wire_count<WireRecord>(wire.buffer(1)), 2u);
  EXPECT_EQ(applied, 0u);
}

}  // namespace
}  // namespace photon
